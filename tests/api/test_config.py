"""Property-style round-trip tests for the typed pipeline configs."""

import dataclasses
import json

import pytest

from repro.api.config import (
    ConfigError,
    LegalizeConfig,
    PipelineConfig,
    SampleConfig,
    ServeConfig,
    StoreConfig,
    TrainConfig,
    TuneConfig,
)

SECTIONS = (
    TrainConfig, SampleConfig, LegalizeConfig, StoreConfig, ServeConfig,
    TuneConfig,
)


def _variants():
    """A non-default instance of every config, exercising every field."""
    return [
        TrainConfig(styles=("Layer-10003",), window=64, train_count=8,
                    seed=7, tile_nm=1024, map_scale=4),
        SampleConfig(style="Layer-10003", count=3, size=32, seed=11,
                     extend_size=128, extend_method="in",
                     sampler_steps="bucketed"),
        LegalizeConfig(physical_size=(1024, 1024), max_workers=2,
                       engine="reference", keep_failures=True,
                       fault_isolation=False),
        StoreConfig(store_dir="store", output_path="out.npz"),
        ServeConfig(objective="diversity", gather_window=0.5, max_batch=16,
                    max_workers=2, max_retries=0, base_seed=3,
                    policy="fair_share", executor="process", engine_workers=2,
                    queue_limit=128, deadline=30.0),
        TuneConfig(slo_p95=1.5, degrade_ladder=(64, 16, "bucketed"),
                   floor_steps=8, degrade_after=3, restore_after=4,
                   queue_high=16, queue_low=4, gather_boost=1.5,
                   tick_interval=0.1),
    ]


class TestSectionRoundTrip:
    @pytest.mark.parametrize("cls", SECTIONS)
    def test_defaults_round_trip(self, cls):
        cfg = cls()
        assert cls.from_dict(cfg.as_dict()) == cfg

    @pytest.mark.parametrize("cfg", _variants(), ids=lambda c: type(c).__name__)
    def test_non_defaults_round_trip(self, cfg):
        rebuilt = type(cfg).from_dict(cfg.as_dict())
        assert rebuilt == cfg
        # ... and through actual JSON text (lists vs tuples normalised)
        rebuilt = type(cfg).from_dict(json.loads(json.dumps(cfg.as_dict())))
        assert rebuilt == cfg

    @pytest.mark.parametrize("cls", SECTIONS)
    def test_unknown_key_rejected(self, cls):
        with pytest.raises(ConfigError, match="unknown"):
            cls.from_dict({"definitely_not_a_field": 1})

    @pytest.mark.parametrize("cls", SECTIONS)
    def test_non_mapping_rejected(self, cls):
        with pytest.raises(ConfigError):
            cls.from_dict([1, 2, 3])

    def test_frozen(self):
        cfg = TrainConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.window = 64

    def test_replace_is_functional(self):
        cfg = TrainConfig()
        other = cfg.replace(window=64)
        assert cfg.window == 128 and other.window == 64

    def test_sample_config_validates_method(self):
        with pytest.raises(ConfigError):
            SampleConfig(extend_method="sideways")

    def test_serve_config_validates_engine_knobs(self):
        with pytest.raises(ConfigError, match="unknown serve policy"):
            ServeConfig(policy="fifo")
        with pytest.raises(ConfigError, match="unknown serve executor"):
            ServeConfig(executor="fiber")
        with pytest.raises(ConfigError, match="engine_workers"):
            ServeConfig(engine_workers=0)
        with pytest.raises(ConfigError, match="queue_limit"):
            ServeConfig(queue_limit=0)
        with pytest.raises(ConfigError, match="deadline"):
            ServeConfig(deadline=0.0)

    def test_serve_config_defaults_preserve_legacy_engine(self):
        """The default engine shape is the pre-engine scheduler: one
        worker, greedy batching, unbounded queue, no deadlines."""
        cfg = ServeConfig()
        assert cfg.policy == "greedy"
        assert cfg.executor == "thread"
        assert cfg.engine_workers == 1
        assert cfg.queue_limit is None
        assert cfg.deadline is None


class TestPipelineConfig:
    def test_defaults_stability(self):
        """The default config's serialized form is the fixed point every
        entrypoint assumes — accidental default drift must fail a test."""
        cfg = PipelineConfig()
        data = cfg.as_dict()
        assert data["train"]["window"] == 128
        assert data["train"]["train_count"] == 48
        assert data["train"]["seed"] == 2024
        assert data["sample"]["count"] == 4
        assert data["legalize"]["engine"] == "vectorized"
        assert data["serve"]["max_retries"] == 2
        assert data["model_cache"] is None
        assert PipelineConfig.from_dict(data) == cfg

    def test_nested_round_trip(self):
        cfg = PipelineConfig(
            train=_variants()[0],
            sample=_variants()[1],
            legalize=_variants()[2],
            store=_variants()[3],
            serve=_variants()[4],
            model_cache="cache",
        )
        assert PipelineConfig.from_dict(cfg.as_dict()) == cfg
        assert PipelineConfig.loads(cfg.dumps()) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = PipelineConfig.from_dict({"train": {"window": 64}})
        assert cfg.train.window == 64
        assert cfg.train.train_count == 48
        assert cfg.sample == SampleConfig()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown PipelineConfig"):
            PipelineConfig.from_dict({"trian": {}})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ConfigError, match="TrainConfig"):
            PipelineConfig.from_dict({"train": {"windw": 64}})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="invalid pipeline JSON"):
            PipelineConfig.loads("{not json")

    def test_file_round_trip(self, tmp_path):
        cfg = PipelineConfig(
            train=TrainConfig(window=64, train_count=8),
            model_cache=str(tmp_path / "mc"),
        )
        path = cfg.save(tmp_path / "pipeline.json")
        assert PipelineConfig.load(path) == cfg

    def test_tuple_fields_survive_json(self, tmp_path):
        cfg = PipelineConfig(
            train=TrainConfig(styles=("Layer-10001", "Layer-10003")),
            legalize=LegalizeConfig(physical_size=(2048, 2048)),
        )
        loaded = PipelineConfig.load(cfg.save(tmp_path / "p.json"))
        assert loaded.train.styles == ("Layer-10001", "Layer-10003")
        assert loaded.legalize.physical_size == (2048, 2048)
        assert loaded == cfg


class TestRecipeHash:
    def test_stable_across_instances(self):
        assert TrainConfig().recipe_hash() == TrainConfig().recipe_hash()

    def test_sensitive_to_every_field(self):
        base = TrainConfig()
        changed = [
            base.replace(styles=("Layer-10001",)),
            base.replace(window=64),
            base.replace(train_count=8),
            base.replace(seed=1),
            base.replace(tile_nm=1024),
            base.replace(map_scale=4),
        ]
        hashes = {cfg.recipe_hash() for cfg in changed}
        assert len(hashes) == len(changed)
        assert base.recipe_hash() not in hashes


class TestSamplerSteps:
    def test_default_is_full(self):
        assert SampleConfig().sampler_steps == "full"

    def test_int_survives_json(self, tmp_path):
        cfg = PipelineConfig(sample=SampleConfig(sampler_steps=12))
        loaded = PipelineConfig.load(cfg.save(tmp_path / "p.json"))
        assert loaded.sample.sampler_steps == 12
        assert loaded == cfg

    def test_bucketed_survives_json(self, tmp_path):
        cfg = PipelineConfig(sample=SampleConfig(sampler_steps="bucketed"))
        loaded = PipelineConfig.load(cfg.save(tmp_path / "p.json"))
        assert loaded.sample.sampler_steps == "bucketed"

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            SampleConfig(sampler_steps="warp")
        with pytest.raises(ConfigError):
            SampleConfig(sampler_steps=0)


class TestTuneConfig:
    def test_defaults_describe_a_sane_controller(self):
        cfg = TuneConfig()
        assert cfg.slo_p95 > 0
        assert cfg.degrade_ladder  # at least one degraded rung
        assert cfg.queue_high > cfg.queue_low

    def test_adaptive_serve_policy_round_trips(self, tmp_path):
        cfg = PipelineConfig()
        cfg = cfg.replace(
            serve=cfg.serve.replace(policy="adaptive"),
            tune=cfg.tune.replace(slo_p95=0.75, degrade_ladder=(32,)),
        )
        loaded = PipelineConfig.load(cfg.save(tmp_path / "adaptive.json"))
        assert loaded == cfg
        assert loaded.serve.policy == "adaptive"
        assert loaded.tune.degrade_ladder == (32,)

    def test_ladder_list_normalizes_to_tuple(self):
        cfg = TuneConfig.from_dict({"degrade_ladder": [64, "bucketed"]})
        assert cfg.degrade_ladder == (64, "bucketed")

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            TuneConfig(slo_p95=-1.0)
        with pytest.raises(ConfigError):
            TuneConfig(degrade_ladder=(None,))
        with pytest.raises(ConfigError):
            TuneConfig(floor_steps="warp")
        with pytest.raises(ConfigError):
            TuneConfig(restore_after=0)
        with pytest.raises(ConfigError):
            TuneConfig(tick_interval=-0.1)
