"""Unit + property tests for the discrete diffusion schedule (Eqs. 1-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import DiffusionSchedule, linear_beta_schedule


class TestLinearBetas:
    def test_paper_endpoints(self):
        betas = linear_beta_schedule(1000, 0.01, 0.5)
        assert betas[0] == pytest.approx(0.01)
        assert betas[-1] == pytest.approx(0.5)
        assert (np.diff(betas) > 0).all()

    def test_single_step(self):
        assert list(linear_beta_schedule(1, 0.02, 0.5)) == [0.02]

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_beta_schedule(0)
        with pytest.raises(ValueError):
            linear_beta_schedule(10, 0.5, 0.01)
        with pytest.raises(ValueError):
            linear_beta_schedule(10, 0.0, 0.5)


class TestCumulative:
    def test_beta_bar_monotone_bounded(self):
        sch = DiffusionSchedule.linear(100)
        assert (np.diff(sch.beta_bars) >= 0).all()
        assert sch.beta_bars[-1] <= 0.5 + 1e-12
        assert sch.beta_bar(1) == pytest.approx(sch.beta(1))

    def test_two_step_composition(self):
        sch = DiffusionSchedule(betas=np.array([0.1, 0.2]))
        # bar2 = b1(1-b2) + (1-b1)b2
        expected = 0.1 * 0.8 + 0.9 * 0.2
        assert sch.beta_bar(2) == pytest.approx(expected)

    def test_step_bounds_checked(self):
        sch = DiffusionSchedule.linear(10)
        with pytest.raises(ValueError):
            sch.beta(0)
        with pytest.raises(ValueError):
            sch.beta_bar(11)


class TestForwardSampling:
    def test_flip_rate_matches_beta_bar(self):
        sch = DiffusionSchedule.linear(50)
        rng = np.random.default_rng(0)
        x0 = np.zeros((200, 200), dtype=np.uint8)
        xk = sch.forward_sample(x0, 25, rng)
        assert xk.mean() == pytest.approx(sch.beta_bar(25), abs=0.02)

    def test_preserves_shape_dtype(self):
        sch = DiffusionSchedule.linear(10)
        rng = np.random.default_rng(0)
        x0 = np.ones((3, 4, 5), dtype=np.uint8)
        xk = sch.forward_sample(x0, 5, rng)
        assert xk.shape == (3, 4, 5)
        assert xk.dtype == np.uint8


class TestPosterior:
    def test_k1_is_delta_at_x0(self):
        sch = DiffusionSchedule.linear(10)
        x0 = np.array([[0, 1]], dtype=np.uint8)
        xk = np.array([[1, 0]], dtype=np.uint8)
        post = sch.posterior_probability(xk, x0, 1)
        assert list(post[0]) == [0.0, 1.0]

    def test_posterior_is_probability(self):
        sch = DiffusionSchedule.linear(20)
        rng = np.random.default_rng(1)
        x0 = (rng.random((8, 8)) < 0.5).astype(np.uint8)
        for k in (2, 10, 20):
            xk = sch.forward_sample(x0, k, rng)
            post = sch.posterior_probability(xk, x0, k)
            assert ((post >= 0) & (post <= 1)).all()

    def test_posterior_mix_interpolates(self):
        sch = DiffusionSchedule.linear(20)
        xk = np.array([[1]], dtype=np.uint8)
        p_sure_1 = sch.posterior_mix(xk, np.array([[1.0]]), 10)
        p_sure_0 = sch.posterior_mix(xk, np.array([[0.0]]), 10)
        p_mid = sch.posterior_mix(xk, np.array([[0.5]]), 10)
        assert p_sure_0[0, 0] <= p_mid[0, 0] <= p_sure_1[0, 0]

    def test_mix_equals_exact_marginalisation(self):
        """Eq. 5: the closed-form mix must equal explicit enumeration."""
        sch = DiffusionSchedule.linear(15)
        rng = np.random.default_rng(2)
        xk = (rng.random((4, 4)) < 0.5).astype(np.uint8)
        p_x0 = rng.random((4, 4))
        k = 7
        explicit = p_x0 * sch.posterior_probability(
            xk, np.ones_like(xk), k
        ) + (1 - p_x0) * sch.posterior_probability(xk, np.zeros_like(xk), k)
        assert np.allclose(sch.posterior_mix(xk, p_x0, k), explicit)


@settings(max_examples=25, deadline=None)
@given(
    steps=st.integers(2, 64),
    k=st.integers(2, 64),
)
def test_posterior_probability_bounds(steps, k):
    if k > steps:
        return
    sch = DiffusionSchedule.linear(steps)
    rng = np.random.default_rng(k)
    x0 = (rng.random((6, 6)) < 0.4).astype(np.uint8)
    xk = sch.forward_sample(x0, k, rng)
    post = sch.posterior_probability(xk, x0, k)
    assert ((post >= 0.0) & (post <= 1.0)).all()
