"""Unit tests for the conditional diffusion model facade."""

import numpy as np
import pytest

from repro.diffusion import (
    ConditionalDiffusionModel,
    DiffusionSchedule,
    MarginalDenoiser,
)
from repro.diffusion.model import _calibrate_density
from repro.geometry import diagonal_touch_pairs


class TestLifecycle:
    def test_sample_before_fit_raises(self):
        model = ConditionalDiffusionModel(window=16, n_classes=0)
        with pytest.raises(RuntimeError):
            model.sample(1, None, np.random.default_rng(0))

    def test_bad_sampler_rejected(self):
        with pytest.raises(ValueError):
            ConditionalDiffusionModel(sampler="nonsense")

    def test_prior_is_fair_coin(self):
        model = ConditionalDiffusionModel(window=16, n_classes=0)
        x = model.prior_sample((64, 64), np.random.default_rng(0))
        assert x.mean() == pytest.approx(0.5, abs=0.05)


class TestSampling:
    @pytest.fixture(scope="class")
    def stripe_model(self):
        rng = np.random.default_rng(0)
        base = np.zeros((24, 24), dtype=np.uint8)
        base[:, 2::6] = 1
        base[:, 3::6] = 1
        topos = np.stack([np.roll(base, int(s), axis=1) for s in range(16)])
        model = ConditionalDiffusionModel(
            schedule=DiffusionSchedule.linear(48, 0.003, 0.08),
            window=24,
            n_classes=0,
        )
        model.fit(topos, None, rng)
        return model

    def test_sample_shape_dtype(self, stripe_model):
        s = stripe_model.sample(3, None, np.random.default_rng(1))
        assert s.shape == (3, 24, 24)
        assert s.dtype == np.uint8
        assert set(np.unique(s)) <= {0, 1}

    def test_sample_density_near_target(self, stripe_model):
        s = stripe_model.sample(4, None, np.random.default_rng(2))
        target = stripe_model.denoiser.target_fill()
        assert abs(s.mean() - target) < 0.12

    def test_samples_have_no_corner_touches(self, stripe_model):
        s = stripe_model.sample(4, None, np.random.default_rng(3))
        for x in s:
            assert diagonal_touch_pairs(x) == []

    def test_custom_shape(self, stripe_model):
        s = stripe_model.sample(1, None, np.random.default_rng(4), shape=(16, 32))
        assert s.shape == (1, 16, 32)

    def test_reproducible_given_seed(self, stripe_model):
        a = stripe_model.sample(2, None, np.random.default_rng(7))
        b = stripe_model.sample(2, None, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_posterior_sampler_runs(self):
        rng = np.random.default_rng(0)
        topos = (rng.random((8, 16, 16)) < 0.3).astype(np.uint8)
        model = ConditionalDiffusionModel(
            denoiser=MarginalDenoiser(n_classes=0),
            schedule=DiffusionSchedule.linear(16),
            window=16,
            n_classes=0,
            sampler="posterior",
            density_guidance=False,
            sharpen=0.0,
        )
        model.fit(topos, None, rng)
        s = model.sample(2, None, rng)
        assert s.shape == (2, 16, 16)


class TestNoiseTo:
    def test_k0_is_identity(self):
        model = ConditionalDiffusionModel(window=8, n_classes=0)
        x0 = np.eye(8, dtype=np.uint8)
        assert np.array_equal(model.noise_to(x0, 0, np.random.default_rng(0)), x0)

    def test_k_positive_flips(self):
        model = ConditionalDiffusionModel(window=8, n_classes=0)
        x0 = np.zeros((64, 64), dtype=np.uint8)
        xk = model.noise_to(x0, model.schedule.steps, np.random.default_rng(0))
        assert xk.mean() == pytest.approx(0.5, abs=0.05)


class TestDensityCalibration:
    def test_pins_mean(self):
        rng = np.random.default_rng(0)
        p = rng.random((64, 64)) * 0.2  # mean ~0.1
        calibrated = _calibrate_density(p, 0.35)
        assert calibrated.mean() == pytest.approx(0.35, abs=0.01)

    def test_preserves_ordering(self):
        p = np.array([[0.1, 0.4, 0.8]])
        c = _calibrate_density(p, 0.6)
        assert c[0, 0] < c[0, 1] < c[0, 2]

    def test_noop_when_matching(self):
        p = np.full((8, 8), 0.3)
        c = _calibrate_density(p, 0.3)
        assert np.allclose(c, 0.3, atol=1e-3)
