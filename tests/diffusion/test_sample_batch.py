"""Unit tests for the batched mixed-condition sampling path."""

import numpy as np
import pytest

from repro.diffusion import ConditionalDiffusionModel
from repro.diffusion.denoisers.base import MarginalDenoiser


class TestPredictX0Many:
    def test_matches_per_item_predict(self, small_model):
        rng = np.random.default_rng(3)
        xk = (rng.random((6, 64, 64)) < 0.5).astype(np.uint8)
        conditions = [0, 1, 0, 1, 1, 0]
        level = small_model.schedule.beta_bar(10)
        many = small_model.denoiser.predict_x0_many(xk, level, conditions)
        per_item = np.stack(
            [
                small_model.denoiser.predict_x0(xk[i], level, conditions[i])
                for i in range(len(conditions))
            ]
        )
        assert np.array_equal(many, per_item)

    def test_base_class_fallback_matches(self):
        denoiser = MarginalDenoiser(n_classes=2)
        denoiser.fit(
            np.stack(
                [np.zeros((8, 8), np.uint8), np.ones((8, 8), np.uint8)]
            ),
            np.array([0, 1]),
            schedule=None,
            rng=np.random.default_rng(0),
        )
        xk = np.zeros((3, 8, 8), dtype=np.uint8)
        out = denoiser.predict_x0_many(xk, 0.3, [0, 1, 0])
        assert np.allclose(out[0], denoiser.predict_x0(xk[0], 0.3, 0))
        assert np.allclose(out[1], denoiser.predict_x0(xk[1], 0.3, 1))

    def test_rejects_bad_input(self, small_model):
        level = small_model.schedule.beta_bar(5)
        with pytest.raises(ValueError):
            small_model.denoiser.predict_x0_many(
                np.zeros((8, 8), np.uint8), level, [0]
            )
        with pytest.raises(ValueError):
            small_model.denoiser.predict_x0_many(
                np.zeros((2, 8, 8), np.uint8), level, [0]
            )


class TestSampleBatch:
    def test_shapes_dtype_and_values(self, small_model):
        out = small_model.sample_batch([0, 1, 0], np.random.default_rng(5))
        assert out.shape == (3, 64, 64)
        assert out.dtype == np.uint8
        assert set(np.unique(out)) <= {0, 1}

    def test_empty_batch(self, small_model):
        out = small_model.sample_batch([], np.random.default_rng(0))
        assert out.shape == (0, 64, 64)

    def test_custom_shape(self, small_model):
        out = small_model.sample_batch(
            [0, 1], np.random.default_rng(1), shape=(32, 48)
        )
        assert out.shape == (2, 32, 48)

    def test_deterministic_for_fixed_rng(self, small_model):
        a = small_model.sample_batch([0, 1], np.random.default_rng(7))
        b = small_model.sample_batch([0, 1], np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_items_track_their_class_density(self, small_model):
        conditions = [0, 1, 0, 1]
        out = small_model.sample_batch(conditions, np.random.default_rng(11))
        for topology, condition in zip(out, conditions):
            target = small_model.denoiser.target_fill(condition)
            assert abs(float(topology.mean()) - target) < 0.2

    def test_mismatched_conditions_raise(self, small_model):
        xk = np.zeros((2, 64, 64), dtype=np.uint8)
        with pytest.raises(ValueError):
            small_model.denoise_step_batch(
                xk, 3, [0], np.random.default_rng(0)
            )
        with pytest.raises(ValueError):
            small_model.denoise_step_batch(
                xk[0], 3, [0], np.random.default_rng(0)
            )

    def test_unfitted_model_raises(self):
        model = ConditionalDiffusionModel(window=16, n_classes=2)
        with pytest.raises(RuntimeError):
            model.sample_batch([0], np.random.default_rng(0))

    def test_posterior_sampler_supported(self, small_dataset):
        from repro.diffusion import DiffusionSchedule

        topologies, conditions = small_dataset
        model = ConditionalDiffusionModel(
            schedule=DiffusionSchedule.linear(16, 0.003, 0.08),
            window=64,
            n_classes=2,
            sampler="posterior",
        )
        model.fit(topologies, conditions, np.random.default_rng(0))
        out = model.sample_batch([0, 1], np.random.default_rng(2))
        assert out.shape == (2, 64, 64)
