"""Unit tests for denoiser backends."""

import numpy as np
import pytest

from repro.diffusion import (
    DiffusionSchedule,
    MarginalDenoiser,
    NeighborhoodDenoiser,
    UNetLite,
    neighborhood_codes,
)
from repro.diffusion.denoisers.neighborhood import (
    downsample_binary,
    upsample_to,
    window_offsets,
)


class TestWindowOffsets:
    def test_rect(self):
        offsets = window_offsets((3, 3))
        assert len(offsets) == 9
        assert (0, 0) in offsets

    def test_diamond(self):
        offsets = window_offsets("diamond2")
        assert len(offsets) == 13
        assert all(abs(r) + abs(c) <= 2 for r, c in offsets)

    def test_plus(self):
        offsets = window_offsets("plus3")
        assert len(offsets) == 13
        assert (3, 0) in offsets and (0, -3) in offsets

    def test_even_rect_rejected(self):
        with pytest.raises(ValueError):
            window_offsets((2, 3))

    def test_explicit_offsets(self):
        offsets = window_offsets([(0, 0), (1, 1)])
        assert offsets == [(0, 0), (1, 1)]


class TestNeighborhoodCodes:
    def test_zero_padding(self):
        x = np.ones((2, 2), dtype=np.uint8)
        codes = neighborhood_codes(x, window_offsets((3, 3)))
        # Corner cell sees 4 ones and 5 padded zeros -> code < full 511.
        assert codes[0, 0] != codes.max() or codes.max() < 511

    def test_distinct_neighbourhoods_distinct_codes(self):
        offsets = window_offsets((3, 3))
        a = np.zeros((3, 3), dtype=np.uint8)
        b = np.zeros((3, 3), dtype=np.uint8)
        b[0, 1] = 1
        assert neighborhood_codes(a, offsets)[1, 1] != neighborhood_codes(b, offsets)[1, 1]

    def test_batch_matches_single(self):
        offsets = window_offsets("diamond2")
        rng = np.random.default_rng(0)
        x = (rng.random((2, 8, 8)) < 0.5).astype(np.uint8)
        batch = neighborhood_codes(x, offsets)
        assert np.array_equal(batch[0], neighborhood_codes(x[0], offsets))


class TestScaling:
    def test_downsample_majority(self):
        x = np.array([[1, 1, 0, 0], [1, 0, 0, 0]], dtype=np.uint8)
        d = downsample_binary(x, 2)
        assert d.shape == (1, 2)
        assert d[0, 0] == 1 and d[0, 1] == 0

    def test_downsample_identity_at_scale_1(self):
        x = np.eye(3, dtype=np.uint8)
        assert np.array_equal(downsample_binary(x, 1), x)

    def test_downsample_pads(self):
        x = np.ones((3, 3), dtype=np.uint8)
        d = downsample_binary(x, 2)
        assert d.shape == (2, 2)

    def test_upsample_crops(self):
        x = np.array([[1, 0]], dtype=np.uint8)
        up = upsample_to(x, 2, (2, 3))
        assert up.shape == (2, 3)
        assert up[0, 0] == 1 and up[1, 2] == 0


class TestMarginalDenoiser:
    def test_unconditional(self):
        d = MarginalDenoiser(n_classes=0)
        sch = DiffusionSchedule.linear(8)
        rng = np.random.default_rng(0)
        topos = np.zeros((4, 8, 8), dtype=np.uint8)
        topos[:, :2] = 1
        d.fit(topos, None, sch, rng)
        p = d.predict_x0(np.zeros((8, 8), dtype=np.uint8), 0.3)
        assert np.allclose(p, 0.25)

    def test_conditional(self):
        d = MarginalDenoiser(n_classes=2)
        sch = DiffusionSchedule.linear(8)
        rng = np.random.default_rng(0)
        topos = np.concatenate(
            [np.zeros((3, 4, 4), dtype=np.uint8), np.ones((3, 4, 4), dtype=np.uint8)]
        )
        conds = np.array([0, 0, 0, 1, 1, 1])
        d.fit(topos, conds, sch, rng)
        assert d.predict_x0(topos[0], 0.2, 0).mean() == pytest.approx(0.0)
        assert d.predict_x0(topos[0], 0.2, 1).mean() == pytest.approx(1.0)

    def test_condition_required_when_conditional(self):
        d = MarginalDenoiser(n_classes=2)
        with pytest.raises(ValueError):
            d.predict_x0(np.zeros((2, 2), dtype=np.uint8), 0.2, None)
        with pytest.raises(ValueError):
            d.predict_x0(np.zeros((2, 2), dtype=np.uint8), 0.2, 5)


class TestNeighborhoodDenoiser:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(0)
        # Vertical stripe world: column parity decides the value.
        base = np.zeros((16, 16), dtype=np.uint8)
        base[:, ::4] = 1
        base[:, 1::4] = 1
        topos = np.stack([base] * 12)
        d = NeighborhoodDenoiser(n_classes=0, scales=(1, 2), n_buckets=8)
        info = d.fit(topos, None, DiffusionSchedule.linear(16), rng)
        return d, info, base

    def test_fit_reports(self, fitted):
        _, info, _ = fitted
        assert info["patterns"] == 12
        assert info["observations"] > 0

    def test_predict_probability_range(self, fitted):
        d, _, base = fitted
        rng = np.random.default_rng(1)
        noisy = np.where(rng.random(base.shape) < 0.2, 1 - base, base).astype(np.uint8)
        p = d.predict_x0(noisy, 0.2)
        assert ((p >= 0) & (p <= 1)).all()

    def test_denoises_toward_clean(self, fitted):
        d, _, base = fitted
        rng = np.random.default_rng(2)
        noisy = np.where(rng.random(base.shape) < 0.15, 1 - base, base).astype(np.uint8)
        p = d.predict_x0(noisy, 0.15)
        recovered = (p > 0.5).astype(np.uint8)
        # Interior cells should mostly be recovered.
        assert (recovered == base).mean() > 0.85

    def test_target_fill_recorded(self, fitted):
        d, _, base = fitted
        assert d.target_fill() == pytest.approx(base.mean())

    def test_unfitted_raises(self):
        d = NeighborhoodDenoiser(n_classes=0)
        with pytest.raises(RuntimeError):
            d.predict_x0(np.zeros((4, 4), dtype=np.uint8), 0.2)

    def test_bucket_bounds(self, fitted):
        d, _, _ = fitted
        assert d.bucket_of(0.5) == d.n_buckets - 1
        assert d.bucket_of(1e-6) == 0
        with pytest.raises(ValueError):
            d.bucket_of(0.0)
        with pytest.raises(ValueError):
            d.bucket_of(0.6)


class TestUNetLite:
    def test_output_shape_and_range(self):
        net = UNetLite(n_classes=2, base_channels=4, seed=0)
        x = np.zeros((2, 16, 16), dtype=np.uint8)
        p = net.predict_x0(x, 0.3, 1)
        assert p.shape == (2, 16, 16)
        assert ((p >= 0) & (p <= 1)).all()

    def test_single_image(self):
        net = UNetLite(n_classes=0, base_channels=4, seed=0)
        p = net.predict_x0(np.zeros((16, 16), dtype=np.uint8), 0.3)
        assert p.shape == (16, 16)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        base = np.zeros((16, 16), dtype=np.uint8)
        base[:, ::2] = 1
        topos = np.stack([base] * 16)
        net = UNetLite(n_classes=0, base_channels=4, seed=1)
        info = net.fit(
            topos, None, DiffusionSchedule.linear(16), rng,
            iterations=60, batch_size=4, lr=3e-3,
        )
        losses = info["loss_history"]
        assert np.mean(losses[-10:]) < np.mean(losses[:10])
