"""Step-schedule abstraction and bucket-collapsed sampler equivalence.

``reverse_steps`` / ``reverse_step_plan`` drive the strided reverse chain;
the property tests pin the bucket-collapsed sampler's legality rate,
density error and diversity to the full chain's on the seed dataset.
"""

import numpy as np
import pytest

from repro.data import STYLES
from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule
from repro.diffusion.model import validate_sampler_steps
from repro.geometry import diagonal_touch_pairs
from repro.metrics import diversity, legalize_many


class TestReverseSteps:
    def test_full_visits_every_step(self):
        schedule = DiffusionSchedule.linear(32, 0.003, 0.08)
        assert schedule.reverse_steps("full") == list(range(32, 0, -1))
        assert schedule.reverse_steps(None) == list(range(32, 0, -1))

    def test_bucketed_one_step_per_bucket(self):
        schedule = DiffusionSchedule.linear(128, 0.003, 0.08)
        n_buckets = 16
        ks = schedule.reverse_steps("bucketed", n_buckets=n_buckets)
        assert ks == sorted(set(ks), reverse=True)
        assert ks[-1] == 1
        assert len(ks) <= n_buckets
        # One representative per *occupied* bucket, each bucket distinct.
        buckets = [
            min(n_buckets - 1, int(schedule.beta_bar(k) / 0.5 * n_buckets))
            for k in ks
        ]
        assert len(set(buckets)) == len(buckets)

    def test_bucketed_collapses_the_chain(self):
        schedule = DiffusionSchedule.linear(128, 0.003, 0.08)
        assert len(schedule.reverse_steps("bucketed", n_buckets=16)) <= 17
        assert len(schedule.reverse_steps("full")) == 128

    def test_bucketed_without_buckets_falls_back_to_full(self):
        schedule = DiffusionSchedule.linear(16)
        assert schedule.reverse_steps("bucketed", n_buckets=None) == list(
            range(16, 0, -1)
        )

    def test_int_spacing_includes_endpoints(self):
        schedule = DiffusionSchedule.linear(64, 0.003, 0.08)
        ks = schedule.reverse_steps(8)
        assert ks[0] == 64 and ks[-1] == 1
        assert len(ks) == 8
        assert ks == sorted(ks, reverse=True)

    def test_invalid_specs_rejected(self):
        schedule = DiffusionSchedule.linear(16)
        with pytest.raises(ValueError):
            schedule.reverse_steps(0)
        with pytest.raises(ValueError):
            schedule.reverse_steps("nonsense")
        with pytest.raises(ValueError):
            # a bool is not a step count (True would collapse the chain)
            schedule.reverse_steps(True)

    def test_oversized_int_clamps_to_full(self):
        schedule = DiffusionSchedule.linear(16)
        assert schedule.reverse_steps(99) == schedule.reverse_steps("full")

    def test_validate_sampler_steps(self):
        assert validate_sampler_steps("full") == "full"
        assert validate_sampler_steps("bucketed") == "bucketed"
        assert validate_sampler_steps(12) == 12
        assert validate_sampler_steps(None) is None
        for bad in ("nope", 0, -3, True, 1.5):
            with pytest.raises(ValueError):
                validate_sampler_steps(bad)


class TestStepPlan:
    def test_plan_chains_to_zero(self, small_model):
        plan = small_model.reverse_step_plan("full")
        ks = [k for k, _ in plan]
        assert ks == list(range(small_model.schedule.steps, 0, -1))
        for (k, k_next), (nk, _) in zip(plan, plan[1:]):
            assert k_next == nk
        assert plan[-1] == (1, 0)

    def test_denoise_evals(self, small_model):
        full = small_model.denoise_evals("full")
        bucketed = small_model.denoise_evals("bucketed")
        assert full == small_model.schedule.steps
        assert bucketed <= small_model.denoiser.n_buckets + 1
        assert bucketed < full

    def test_constructor_default_is_used(self):
        model = ConditionalDiffusionModel(
            schedule=DiffusionSchedule.linear(32, 0.003, 0.08),
            window=16,
            n_classes=0,
            sampler_steps="bucketed",
        )
        assert len(model.reverse_step_plan()) < 32
        assert len(model.reverse_step_plan("full")) == 32

    def test_bad_constructor_spec_rejected(self):
        with pytest.raises(ValueError):
            ConditionalDiffusionModel(sampler_steps="warp")

    def test_denoise_step_validates_k_next(self, small_model):
        xk = np.zeros((8, 8), dtype=np.uint8)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            small_model.denoise_step(xk, 4, 0, rng, k_next=4)
        with pytest.raises(ValueError):
            small_model.denoise_step(xk, 4, 0, rng, k_next=-1)


class TestBucketedEquivalence:
    """The acceptance property: the collapsed chain stays statistically
    equivalent to the full chain on the seed dataset."""

    N = 8

    @pytest.fixture(scope="class")
    def samples(self, small_model):
        out = {}
        for mode in ("full", "bucketed"):
            per_style = {}
            for cls, style in enumerate(STYLES):
                per_style[style] = small_model.sample(
                    self.N, cls, np.random.default_rng(100),
                    sampler_steps=mode,
                )
            out[mode] = per_style
        return out

    def test_shape_dtype_and_corner_freedom(self, samples):
        for per_style in samples.values():
            for stack in per_style.values():
                assert stack.shape == (self.N, 64, 64)
                assert stack.dtype == np.uint8
                for x in stack:
                    assert diagonal_touch_pairs(x) == []

    def test_density_error_within_tolerance(self, small_model, samples):
        for mode in ("full", "bucketed"):
            for cls, style in enumerate(STYLES):
                target = small_model.denoiser.target_fill(cls)
                error = abs(samples[mode][style].mean() - target)
                assert error < 0.02, (mode, style, error)

    def test_legality_within_tolerance(self, samples):
        for style in STYLES:
            full = legalize_many(
                list(samples["full"][style]), style, max_workers=4
            ).legality
            bucketed = legalize_many(
                list(samples["bucketed"][style]), style, max_workers=4
            ).legality
            assert bucketed >= full - 0.25, (style, full, bucketed)

    def test_diversity_within_tolerance(self, samples):
        for style in STYLES:
            full = diversity(list(samples["full"][style]))
            bucketed = diversity(list(samples["bucketed"][style]))
            assert abs(full - bucketed) <= 0.75, (style, full, bucketed)

    def test_batched_trajectory_supports_bucketed(self, small_model):
        conditions = [0, 1, 0, 1]
        stack = small_model.sample_batch(
            conditions, np.random.default_rng(5), sampler_steps="bucketed"
        )
        assert stack.shape == (4, 64, 64)
        for cls in (0, 1):
            member = stack[[i for i, c in enumerate(conditions) if c == cls]]
            target = small_model.denoiser.target_fill(cls)
            assert abs(member.mean() - target) < 0.05

    def test_bucketed_is_cheaper(self, small_model):
        assert (
            small_model.denoise_evals("bucketed")
            * 3 <= small_model.denoise_evals("full")
        )
