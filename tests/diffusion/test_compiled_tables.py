"""Compiled logit tables: numerical identity, lifecycle and vectorized fit.

The sampling hot loop reads precompiled float32 logit lookup tables; these
tests pin that representation to the on-the-fly reference path within 1e-6
and cover compilation/rehydration across fit, pickle and legacy payloads.
"""

import pickle

import numpy as np
import pytest

from repro.diffusion import (
    DiffusionSchedule,
    MarginalDenoiser,
    NeighborhoodDenoiser,
)

LEVELS = (0.01, 0.1, 0.23, 0.4, 0.5)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    base = np.zeros((24, 24), dtype=np.uint8)
    base[:, 2::5] = 1
    base[:, 3::5] = 1
    topos = np.stack(
        [np.roll(base, int(s), axis=1) for s in range(12)]
        + [np.roll(base.T, int(s), axis=0) for s in range(12)]
    )
    conds = np.array([0] * 12 + [1] * 12)
    d = NeighborhoodDenoiser(n_classes=2, scales=(1, 2, 4), n_buckets=8)
    d.fit(topos, conds, DiffusionSchedule.linear(16), rng)
    return d


@pytest.fixture()
def noisy():
    rng = np.random.default_rng(11)
    return (rng.random((4, 24, 24)) < 0.5).astype(np.uint8)


class TestNumericalIdentity:
    def test_predict_x0_matches_reference(self, fitted, noisy):
        for level in LEVELS:
            for c in (0, 1):
                fast = fitted.predict_x0(noisy, level, c)
                slow = fitted._predict_x0_reference(noisy, level, c)
                assert np.abs(fast - slow).max() <= 1e-6

    def test_predict_x0_many_matches_reference(self, fitted, noisy):
        conds = [0, 1, 1, 0]
        for level in LEVELS:
            fast = fitted.predict_x0_many(noisy, level, conds)
            slow = fitted._predict_x0_many_reference(noisy, level, conds)
            assert np.abs(fast - slow).max() <= 1e-6

    def test_single_image_matches_reference(self, fitted, noisy):
        fast = fitted.predict_x0(noisy[0], 0.2, 1)
        slow = fitted._predict_x0_reference(noisy[0], 0.2, 1)
        assert fast.shape == (24, 24)
        assert np.abs(fast - slow).max() <= 1e-6

    def test_probability_range(self, fitted, noisy):
        p = fitted.predict_x0(noisy, 0.3, 0)
        assert ((p > 0) & (p < 1)).all()

    def test_use_compiled_toggle_selects_reference(self, fitted, noisy):
        fitted.use_compiled = False
        try:
            toggled = fitted.predict_x0(noisy, 0.2, 0)
            reference = fitted._predict_x0_reference(noisy, 0.2, 0)
        finally:
            fitted.use_compiled = True
        assert np.array_equal(toggled, reference)


class TestCompileLifecycle:
    def test_compiled_after_fit(self, fitted):
        assert fitted.compiled
        assert set(fitted._logit_tables) == set(fitted.scales)
        for s in fitted.scales:
            table = fitted._logit_tables[s]
            assert table.dtype == np.float32
            assert table.shape == (2, fitted.n_buckets, fitted._n_codes)

    def test_unfitted_cannot_compile(self):
        d = NeighborhoodDenoiser(n_classes=0)
        assert not d.compile_tables()
        assert not d.compiled

    def test_base_denoiser_has_no_tables(self):
        assert MarginalDenoiser(n_classes=0).compile_tables() is False

    def test_compile_is_idempotent_without_force(self, fitted):
        before = dict(fitted._logit_tables)
        assert fitted.compile_tables()
        for s in fitted.scales:
            # no force -> the compiled tables are not rebuilt
            assert fitted._logit_tables[s] is before[s]

    def test_refit_invalidates_and_recompiles(self):
        rng = np.random.default_rng(0)
        d = NeighborhoodDenoiser(n_classes=0, scales=(1, 2), n_buckets=4)
        sparse = (rng.random((6, 16, 16)) < 0.1).astype(np.uint8)
        dense = (rng.random((6, 16, 16)) < 0.6).astype(np.uint8)
        schedule = DiffusionSchedule.linear(8)
        d.fit(sparse, None, schedule, rng)
        first = {s: t.copy() for s, t in d._logit_tables.items()}
        d.fit(dense, None, schedule, rng)
        assert d.compiled
        assert any(
            not np.array_equal(d._logit_tables[s], first[s])
            for s in d.scales
        )

    def test_hoisted_attributes(self, fitted):
        assert fitted._weight_total == pytest.approx(
            sum(fitted.scale_weights)
        )
        assert fitted._pads == (
            max(abs(r) for r, _ in fitted.offsets),
            max(abs(c) for _, c in fitted.offsets),
        )

    def test_pickle_roundtrip_keeps_compiled_form(self, fitted, noisy):
        clone = pickle.loads(pickle.dumps(fitted))
        assert clone.compiled
        assert np.array_equal(
            clone.predict_x0(noisy, 0.2, 0), fitted.predict_x0(noisy, 0.2, 0)
        )

    def test_legacy_pickle_state_rehydrates(self, fitted, noisy):
        """A payload pickled before compiled tables existed must come back
        compiled (the registry's disk tier serves such models)."""
        legacy_keys = (
            "_weight_total", "_pads", "use_compiled",
            "_compiled", "_logit_tables",
        )
        state = {
            k: v for k, v in fitted.__dict__.items() if k not in legacy_keys
        }
        clone = NeighborhoodDenoiser.__new__(NeighborhoodDenoiser)
        clone.__setstate__(state)
        assert clone.compiled
        assert clone.use_compiled
        assert np.array_equal(
            clone.predict_x0(noisy, 0.2, 1), fitted.predict_x0(noisy, 0.2, 1)
        )


class TestVectorizedFit:
    def test_observation_count(self):
        rng = np.random.default_rng(5)
        topos = (rng.random((7, 16, 16)) < 0.3).astype(np.uint8)
        d = NeighborhoodDenoiser(n_classes=0, scales=(1, 2), n_buckets=4)
        info = d.fit(
            topos, None, DiffusionSchedule.linear(8), rng,
            draws_per_pattern=12,
        )
        # Every draw contributes exactly one observation per pixel at the
        # finest scale.
        assert info["observations"] == 7 * 12 * 16 * 16

    def test_round_robin_covers_every_bucket(self):
        rng = np.random.default_rng(6)
        topos = (rng.random((4, 16, 16)) < 0.3).astype(np.uint8)
        d = NeighborhoodDenoiser(n_classes=0, scales=(1,), n_buckets=8)
        d.fit(topos, None, DiffusionSchedule.linear(8), rng,
              draws_per_pattern=8)
        per_bucket = d._counts[1][0].sum(axis=(1, 2))
        assert (per_bucket > 0).all()

    def test_learns_structure(self):
        rng = np.random.default_rng(7)
        base = np.zeros((16, 16), dtype=np.uint8)
        base[:, ::4] = 1
        base[:, 1::4] = 1
        topos = np.stack([base] * 12)
        d = NeighborhoodDenoiser(n_classes=0, scales=(1, 2), n_buckets=8)
        d.fit(topos, None, DiffusionSchedule.linear(16), rng)
        noisy = np.where(
            rng.random(base.shape) < 0.15, 1 - base, base
        ).astype(np.uint8)
        recovered = (d.predict_x0(noisy, 0.15) > 0.5).astype(np.uint8)
        assert (recovered == base).mean() > 0.85
