"""Unit tests for the Eq.-(10) training objective."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion import (
    DiffusionSchedule,
    bernoulli_kl,
    bernoulli_nll,
    diffusion_loss,
)


class TestBernoulliKL:
    def test_zero_when_equal(self):
        p = np.array([0.1, 0.5, 0.9])
        assert np.allclose(bernoulli_kl(p, p), 0.0, atol=1e-9)

    def test_positive_when_different(self):
        assert (bernoulli_kl(np.array([0.2]), np.array([0.8])) > 0).all()

    def test_handles_extremes(self):
        kl = bernoulli_kl(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert np.isfinite(kl).all()


class TestBernoulliNLL:
    def test_perfect_prediction(self):
        x = np.array([1.0, 0.0])
        p = np.array([1.0, 0.0])
        assert np.allclose(bernoulli_nll(x, p), 0.0, atol=1e-6)

    def test_wrong_prediction_large(self):
        nll = bernoulli_nll(np.array([1.0]), np.array([1e-12]))
        assert nll[0] > 10


class TestDiffusionLoss:
    def test_oracle_prediction_minimises(self):
        sch = DiffusionSchedule.linear(20)
        rng = np.random.default_rng(0)
        x0 = (rng.random((16, 16)) < 0.4).astype(np.uint8)
        xk = sch.forward_sample(x0, 10, rng)
        oracle = diffusion_loss(sch, x0, xk, 10, x0.astype(np.float64))
        wrong = diffusion_loss(sch, x0, xk, 10, 1.0 - x0.astype(np.float64))
        uniform = diffusion_loss(sch, x0, xk, 10, np.full(x0.shape, 0.5))
        assert oracle < uniform < wrong

    def test_lambda_weighting(self):
        sch = DiffusionSchedule.linear(10)
        rng = np.random.default_rng(1)
        x0 = (rng.random((8, 8)) < 0.5).astype(np.uint8)
        xk = sch.forward_sample(x0, 5, rng)
        p = np.full(x0.shape, 0.5)
        small = diffusion_loss(sch, x0, xk, 5, p, lam=1e-3)
        large = diffusion_loss(sch, x0, xk, 5, p, lam=1.0)
        assert large > small


@settings(max_examples=25, deadline=None)
@given(k=st.integers(1, 20))
def test_loss_nonnegative(k):
    sch = DiffusionSchedule.linear(20)
    rng = np.random.default_rng(k)
    x0 = (rng.random((8, 8)) < 0.4).astype(np.uint8)
    xk = sch.forward_sample(x0, k, rng)
    p = rng.random((8, 8))
    assert diffusion_loss(sch, x0, xk, k, p) >= 0.0
