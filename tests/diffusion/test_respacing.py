"""Unit tests for DDIM-style schedule respacing."""

import numpy as np
import pytest

from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule


class TestRespaced:
    def test_terminal_level_preserved(self):
        full = DiffusionSchedule.linear(128, 0.003, 0.08)
        short = full.respaced(16)
        assert short.steps == 16
        assert short.beta_bars[-1] == pytest.approx(full.beta_bars[-1], rel=1e-9)

    def test_levels_subset_of_original(self):
        full = DiffusionSchedule.linear(64, 0.003, 0.08)
        short = full.respaced(8)
        # Every respaced cumulative level appears in the full trajectory.
        for bar in short.beta_bars:
            assert np.min(np.abs(full.beta_bars - bar)) < 1e-9

    def test_identity_respacing(self):
        full = DiffusionSchedule.linear(32, 0.003, 0.08)
        same = full.respaced(32)
        assert np.allclose(same.beta_bars, full.beta_bars)

    def test_bounds_validated(self):
        full = DiffusionSchedule.linear(16)
        with pytest.raises(ValueError):
            full.respaced(0)
        with pytest.raises(ValueError):
            full.respaced(17)

    def test_sampling_with_respaced_schedule(self, small_model):
        """A trained denoiser samples under a respaced schedule unchanged."""
        fast = ConditionalDiffusionModel(
            denoiser=small_model.denoiser,
            schedule=small_model.schedule.respaced(12),
            window=small_model.window,
            n_classes=small_model.n_classes,
        )
        fast.fitted = True
        samples = fast.sample(2, 0, np.random.default_rng(0))
        assert samples.shape == (2, 64, 64)
        assert 0.05 < samples.mean() < 0.7
