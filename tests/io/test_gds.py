"""Unit tests for the GDSII stream writer/reader."""

import struct

import numpy as np
import pytest

from repro.io.gds import (
    _float_to_gds64,
    _gds64_to_float,
    read_gds,
    write_gds,
)
from repro.squish import PatternLibrary, SquishPattern


def make_library():
    lib = PatternLibrary(name="gds-demo")
    lib.add(
        SquishPattern(
            topology=np.array([[1, 0], [1, 1]], dtype=np.uint8),
            dx=np.array([100, 200]),
            dy=np.array([150, 50]),
            style="Layer-10001",
        )
    )
    lib.add(
        SquishPattern(
            topology=np.array([[0, 1, 0]], dtype=np.uint8),
            dx=np.array([50, 80, 70]),
            dy=np.array([40]),
            style="Layer-10003",
        )
    )
    return lib


class TestGdsReal:
    @pytest.mark.parametrize("value", [1e-9, 1e-3, 1.0, 2048.0, 0.0, -0.5])
    def test_round_trip(self, value):
        encoded = _float_to_gds64(value)
        assert len(encoded) == 8
        assert _gds64_to_float(encoded) == pytest.approx(value, rel=1e-12)


class TestWriteRead:
    def test_round_trip_geometry(self, tmp_path):
        lib = make_library()
        path = write_gds(lib, tmp_path / "demo.gds")
        loaded = read_gds(path)
        assert loaded.name == "gds-demo"
        assert len(loaded) == 2
        for original, restored in zip(lib, loaded):
            orig_rects = sorted(original.to_rects())
            rest_rects = sorted(restored.to_rects())
            assert orig_rects == rest_rects
            assert restored.style == original.style

    def test_header_magic(self, tmp_path):
        path = write_gds(make_library(), tmp_path / "demo.gds")
        data = path.read_bytes()
        length, rtype, dtype = struct.unpack_from(">HBB", data, 0)
        assert rtype == 0x00  # HEADER
        version = struct.unpack_from(">h", data, 4)[0]
        assert version == 600

    def test_deterministic_bytes(self, tmp_path):
        a = write_gds(make_library(), tmp_path / "a.gds").read_bytes()
        b = write_gds(make_library(), tmp_path / "b.gds").read_bytes()
        assert a == b

    def test_empty_library(self, tmp_path):
        path = write_gds(PatternLibrary(name="empty"), tmp_path / "e.gds")
        loaded = read_gds(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"

    def test_corrupt_record_rejected(self, tmp_path):
        path = tmp_path / "bad.gds"
        path.write_bytes(b"\x00\x02\x00\x00")  # length 2 < header size
        with pytest.raises(ValueError):
            read_gds(path)
