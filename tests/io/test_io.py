"""Unit tests for rendering and persistence."""

import numpy as np
import pytest

from repro.io import ascii_art, load_library, save_library, write_pgm
from repro.squish import PatternLibrary, SquishPattern


class TestAsciiArt:
    def test_symbols(self):
        t = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        art = ascii_art(t)
        lines = art.splitlines()
        assert len(lines) == 2
        # Row 0 is the bottom stripe -> printed last.
        assert lines[1] == "#."
        assert lines[0] == ".#"

    def test_downsampling(self):
        t = np.ones((256, 256), dtype=np.uint8)
        art = ascii_art(t, max_size=32)
        lines = art.splitlines()
        assert len(lines) <= 32
        assert set("".join(lines)) == {"#"}

    def test_mixed_downsample_threshold(self):
        t = np.zeros((128, 128), dtype=np.uint8)
        t[:, :64] = 1
        art = ascii_art(t, max_size=16)
        assert "#" in art and "." in art


class TestPGM:
    def test_writes_header_and_pixels(self, tmp_path):
        t = np.array([[1, 0]], dtype=np.uint8)
        path = write_pgm(t, tmp_path / "x.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n2 1\n255\n")
        assert data[-2:] == bytes([0, 255])  # filled=black then empty=white


class TestLibraryStore:
    def _library(self):
        lib = PatternLibrary(name="demo")
        lib.add(
            SquishPattern(
                topology=np.array([[1, 0], [0, 1]], dtype=np.uint8),
                dx=np.array([10, 20]),
                dy=np.array([30, 40]),
                style="Layer-10001",
            )
        )
        lib.add(
            SquishPattern(
                topology=np.ones((3, 3), dtype=np.uint8),
                dx=np.array([5, 5, 5]),
                dy=np.array([5, 5, 5]),
                style="Layer-10003",
            )
        )
        return lib

    def test_round_trip(self, tmp_path):
        lib = self._library()
        path = tmp_path / "lib.npz"
        save_library(lib, path)
        loaded = load_library(path)
        assert loaded.name == "demo"
        assert len(loaded) == 2
        for original, restored in zip(lib, loaded):
            assert original == restored
            assert original.style == restored.style

    def test_empty_library(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_library(PatternLibrary(name="none"), path)
        loaded = load_library(path)
        assert len(loaded) == 0
        assert loaded.name == "none"
        assert loaded.styles() == []

    @pytest.mark.parametrize(
        "name", ["lib", "lib.npz", "lib.v1", "archive.tar"]
    )
    def test_returned_path_is_the_written_file(self, tmp_path, name):
        # np.savez_compressed appends ".npz" when missing; the returned
        # path must always point at the file actually on disk.
        written = save_library(self._library(), tmp_path / name)
        assert written.exists()
        assert written.name.endswith(".npz")
        assert len(load_library(written)) == 2

    def test_round_trip_via_suffixless_path(self, tmp_path):
        lib = self._library()
        written = save_library(lib, tmp_path / "noext")
        assert written == tmp_path / "noext.npz"
        loaded = load_library(written)
        assert len(loaded) == len(lib)
        for original, restored in zip(lib, loaded):
            assert original == restored

    def test_mixed_style_round_trip_with_untagged_pattern(self, tmp_path):
        lib = self._library()
        lib.add(
            SquishPattern(
                topology=np.array([[1]], dtype=np.uint8),
                dx=np.array([7]),
                dy=np.array([9]),
                style=None,
            )
        )
        written = save_library(lib, tmp_path / "mixed.npz")
        loaded = load_library(written)
        assert len(loaded) == 3
        assert [p.style for p in loaded] == [
            "Layer-10001", "Layer-10003", None
        ]
        # styles() only reports tagged patterns, in sorted order.
        assert loaded.styles() == ["Layer-10001", "Layer-10003"]
        assert loaded[2] == lib[2]

    def test_empty_library_suffixless_round_trip(self, tmp_path):
        written = save_library(PatternLibrary(name="void"), tmp_path / "void")
        assert written.exists()
        assert len(load_library(written)) == 0
