"""Unit tests for style specs and the placement grid."""

import pytest

from repro.data import LAYER_10001, LAYER_10003, STYLES, style_condition, style_spec


class TestStyleLookup:
    def test_known_styles(self):
        assert style_spec("Layer-10001") is LAYER_10001
        assert style_spec("Layer-10003") is LAYER_10003

    def test_unknown_style(self):
        with pytest.raises(KeyError):
            style_spec("Layer-12345")

    def test_condition_indices_distinct(self):
        indices = [style_condition(s) for s in STYLES]
        assert sorted(indices) == list(range(len(STYLES)))


class TestStyleGeometryConsistency:
    @pytest.mark.parametrize("spec", [LAYER_10001, LAYER_10003])
    def test_dims_snapped_and_legal(self, spec):
        for w in spec.wire_widths:
            assert w % spec.grid == 0
            assert w >= spec.rules.min_width

    @pytest.mark.parametrize("spec", [LAYER_10001, LAYER_10003])
    def test_space_range_legal(self, spec):
        assert spec.space_range[0] >= spec.rules.min_space

    def test_layer_10003_coarser(self):
        assert min(LAYER_10003.wire_widths) > max(LAYER_10001.wire_widths)


class TestSnap:
    def test_rounds_up_to_grid(self):
        assert LAYER_10001.snap(33) == 48
        assert LAYER_10001.snap(48) == 48

    def test_minimum_enforced(self):
        assert LAYER_10001.snap(10, minimum=30) == 32

    def test_zero(self):
        assert LAYER_10001.snap(0) == 0
