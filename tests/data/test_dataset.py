"""Unit tests for the dataset builder."""

import numpy as np
import pytest

from repro.data import (
    DatasetConfig,
    build_library,
    build_training_set,
    reference_library,
    topology_stack,
)
from repro.drc import check_pattern, rules_for_style

CFG = DatasetConfig(tile_nm=1024, topology_size=64, map_scale=6, seed=5)


class TestBuildLibrary:
    def test_count_and_shape(self):
        lib = build_library("Layer-10001", 6, CFG)
        assert len(lib) == 6
        for p in lib:
            assert p.shape == (64, 64)
            assert p.physical_size == (1024, 1024)
            assert p.style == "Layer-10001"

    def test_tiles_are_clean(self):
        lib = build_library("Layer-10003", 4, CFG)
        rules = rules_for_style("Layer-10003")
        assert all(check_pattern(p, rules).is_clean for p in lib)

    def test_deterministic_given_seed(self):
        a = build_library("Layer-10001", 3, CFG)
        b = build_library("Layer-10001", 3, CFG)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = build_library("Layer-10001", 3, CFG)
        b = build_library(
            "Layer-10001", 3,
            DatasetConfig(tile_nm=1024, topology_size=64, map_scale=6, seed=99),
        )
        assert any(x != y for x, y in zip(a, b))


class TestTrainingSet:
    def test_conditions_align(self):
        topos, conds = build_training_set(
            ["Layer-10001", "Layer-10003"], 4, CFG
        )
        assert topos.shape == (8, 64, 64)
        assert list(np.unique(conds)) == [0, 1]
        assert (conds[:4] == 0).all() and (conds[4:] == 1).all()

    def test_topology_stack(self):
        lib = build_library("Layer-10001", 3, CFG)
        stack = topology_stack(lib)
        assert stack.shape == (3, 64, 64)
        assert stack.dtype == np.uint8


class TestReferenceLibrary:
    def test_scales_tile_with_resolution(self):
        lib = reference_library("Layer-10003", 2, 128, seed=3)
        assert len(lib) == 2
        assert lib[0].shape == (128, 128)
        assert lib[0].physical_size == (2048, 2048)

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            reference_library("Layer-10001", 2, 100)
