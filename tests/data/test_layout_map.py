"""Unit tests for synthetic layout-map generation."""

import numpy as np
import pytest

from repro.data import LAYER_10001, LAYER_10003, generate_layout_map
from repro.drc import check_pattern, rules_for_style
from repro.geometry import Rect
from repro.squish import encode_rects


@pytest.fixture(scope="module")
def maps():
    rng = np.random.default_rng(0)
    return {
        spec.name: generate_layout_map(spec, 4096, 4096, rng)
        for spec in (LAYER_10001, LAYER_10003)
    }


class TestMapGeneration:
    def test_nonempty(self, maps):
        for name, layout_map in maps.items():
            assert len(layout_map.rects) > 20, name

    def test_rects_inside_map(self, maps):
        for layout_map in maps.values():
            bounds = Rect(0, 0, layout_map.width, layout_map.height)
            assert all(bounds.contains_rect(r) for r in layout_map.rects)

    def test_grid_snapped(self, maps):
        for name, layout_map in maps.items():
            grid = 16
            for r in layout_map.rects[:200]:
                assert r.x0 % grid == 0 and r.x1 % grid == 0, name
                assert r.y0 % grid == 0 and r.y1 % grid == 0, name

    def test_rules_hold_by_construction(self, maps):
        """Every full-map window must be DRC-clean."""
        rng = np.random.default_rng(1)
        for name, layout_map in maps.items():
            rules = rules_for_style(name)
            for _ in range(4):
                x0 = int(rng.integers(0, 2048))
                y0 = int(rng.integers(0, 2048))
                rects = layout_map.window(x0, y0, 2048)
                pattern = encode_rects(rects, Rect(0, 0, 2048, 2048))
                report = check_pattern(pattern, rules)
                assert report.is_clean, f"{name}: {report.summary()}"

    def test_window_translates_to_origin(self, maps):
        layout_map = maps["Layer-10001"]
        rects = layout_map.window(1024, 1024, 512)
        window = Rect(0, 0, 512, 512)
        assert all(window.contains_rect(r) for r in rects)

    def test_styles_differ_in_density(self, maps):
        def fill(layout_map):
            area = sum(r.area for r in layout_map.rects)
            return area / (layout_map.width * layout_map.height)

        # The routing layer is denser than the block layer.
        assert fill(maps["Layer-10001"]) > fill(maps["Layer-10003"])

    def test_unknown_kind_rejected(self):
        from dataclasses import replace

        bad = replace(LAYER_10001, kind="hexagons")
        with pytest.raises(ValueError):
            generate_layout_map(bad, 1024, 1024, np.random.default_rng(0))
