"""Unit tests for the full legalization function f_R(F, T)."""

import numpy as np
import pytest

from repro.drc import DesignRules, check_pattern
from repro.legalize import legalize

RULES = DesignRules(min_space=30, min_width=40, min_area=2000, name="test")


class TestSuccessPaths:
    def test_empty_topology(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        result = legalize(t, (1000, 1000), RULES)
        assert result.ok
        assert result.pattern.physical_size == (1000, 1000)

    def test_simple_block(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[2:5, 2:6] = 1
        result = legalize(t, (1000, 1000), RULES, style="Layer-10001")
        assert result.ok
        assert result.pattern.style == "Layer-10001"
        assert check_pattern(result.pattern, RULES).is_clean

    def test_two_blocks_spacing(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[2:6, 1:3] = 1
        t[2:6, 5:7] = 1
        result = legalize(t, (1000, 1000), RULES)
        assert result.ok
        gap = result.pattern.x_coords()[5] - result.pattern.x_coords()[3]
        assert gap >= RULES.min_space

    def test_deltas_sum_to_physical(self):
        t = np.zeros((4, 4), dtype=np.uint8)
        t[1:3, 1:3] = 1
        result = legalize(t, (777, 913), RULES)
        assert result.ok
        assert result.pattern.dx.sum() == 777
        assert result.pattern.dy.sum() == 913

    def test_area_repair_succeeds(self):
        # A lone interior cell would be 1 cell -> area repair must stretch it.
        t = np.zeros((16, 16), dtype=np.uint8)
        t[8, 8] = 1
        result = legalize(t, (2000, 2000), RULES)
        assert result.ok
        poly = result.pattern.polygons()[0]
        assert poly.area >= RULES.min_area


class TestAreaIterationCount:
    def test_first_round_success_counts_one_round(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[2:5, 2:6] = 1
        result = legalize(t, (1000, 1000), RULES)
        assert result.ok
        assert result.area_iterations == 1
        assert "legalized in 1 round(s)" in result.log_text()

    def test_second_round_success_counts_two_rounds(self):
        # Tight budget: slack spreading cannot inflate the lone pixel past
        # min_area in round 1, so one genuine repair round must run.
        t = np.zeros((16, 16), dtype=np.uint8)
        t[8, 8] = 1
        result = legalize(t, (64, 64), RULES)
        assert result.ok
        assert result.area_iterations == 2
        assert "legalized in 2 round(s)" in result.log_text()

    def test_exhausted_rounds_count_all_rounds(self):
        t = np.zeros((16, 16), dtype=np.uint8)
        t[8, 8] = 1
        result = legalize(t, (60, 60), RULES, max_area_iterations=1)
        assert not result.ok
        assert result.area_iterations == 1
        assert "after 1 repair rounds" in result.log_text()


class TestFailurePaths:
    def test_corner_touch_fails_fast(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[1:3, 1:3] = 1
        t[3:5, 3:5] = 1
        result = legalize(t, (10_000, 10_000), RULES)
        assert not result.ok
        assert result.failed_region is not None
        assert "corner" in result.log_text()
        # The failed region covers the touch point.
        region = result.failed_region
        assert region.upper <= 2 <= region.bottom
        assert region.left <= 2 <= region.right

    def test_budget_overflow_fails_with_region(self):
        # Alternating columns -> every 1-run needs 40nm, every gap 30nm.
        t = np.tile(np.array([1, 0], dtype=np.uint8), (4, 8))[:, :16]
        result = legalize(t, (200, 200), RULES)
        assert not result.ok
        assert result.failed_region is not None
        assert "x-axis" in result.log_text() or "y-axis" in result.log_text()

    def test_failure_log_names_budget(self):
        t = np.tile(np.array([1, 0], dtype=np.uint8), (4, 8))[:, :16]
        result = legalize(t, (200, 200), RULES)
        assert "budget 200" in result.log_text()

    def test_area_unrepairable_when_budget_tight(self):
        # A lone pixel needs stretching, but the budget is fully consumed by
        # the min deltas of a large grid.
        t = np.zeros((64, 64), dtype=np.uint8)
        t[32, 32] = 1
        result = legalize(t, (70, 70), RULES)
        assert not result.ok


class TestDeterminism:
    def test_same_input_same_output(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[2:5, 2:6] = 1
        a = legalize(t, (1000, 1000), RULES)
        b = legalize(t, (1000, 1000), RULES)
        assert a.ok and b.ok
        assert np.array_equal(a.pattern.dx, b.pattern.dx)
        assert np.array_equal(a.pattern.dy, b.pattern.dy)

    def test_input_not_mutated(self):
        t = np.zeros((8, 8), dtype=np.uint8)
        t[2:5, 2:6] = 1
        snapshot = t.copy()
        legalize(t, (1000, 1000), RULES)
        assert np.array_equal(t, snapshot)
