"""Unit + property tests for the interval-sum solvers.

The DAG longest-path solver is cross-validated against the scipy LP
backend: both must agree on feasibility, and the longest-path solution must
satisfy every constraint exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legalize import (
    AxisInfeasibleError,
    IntervalConstraint,
    solve_axis,
    solve_axis_lp,
)


def check_solution(deltas, total, constraints, min_delta=1):
    assert deltas.sum() == total
    assert (deltas >= min_delta).all()
    for c in constraints:
        assert deltas[c.start : c.stop].sum() >= c.min_length


class TestSolveAxis:
    def test_unconstrained(self):
        sol = solve_axis(4, 100, [])
        check_solution(sol.deltas, 100, [])
        assert sol.required == 4

    def test_single_constraint(self):
        cons = [IntervalConstraint(1, 3, 50)]
        sol = solve_axis(5, 100, cons)
        check_solution(sol.deltas, 100, cons)

    def test_chained_constraints(self):
        cons = [IntervalConstraint(0, 2, 40), IntervalConstraint(2, 4, 40)]
        sol = solve_axis(4, 100, cons)
        check_solution(sol.deltas, 100, cons)
        assert sol.required == 80

    def test_overlapping_constraints(self):
        cons = [IntervalConstraint(0, 3, 60), IntervalConstraint(1, 4, 60)]
        sol = solve_axis(4, 200, cons)
        check_solution(sol.deltas, 200, cons)

    def test_infeasible_budget(self):
        cons = [IntervalConstraint(0, 2, 90), IntervalConstraint(2, 4, 90)]
        with pytest.raises(AxisInfeasibleError) as exc:
            solve_axis(4, 100, cons)
        assert exc.value.required == 180
        a, b = exc.value.critical_span
        assert 0 <= a < b <= 4

    def test_infeasible_min_delta(self):
        with pytest.raises(AxisInfeasibleError):
            solve_axis(10, 5, [])

    def test_slack_spread_monotone(self):
        sol = solve_axis(10, 1000, [IntervalConstraint(4, 6, 100)])
        check_solution(sol.deltas, 1000, [IntervalConstraint(4, 6, 100)])
        # slack spreading should not dump everything on the last cell
        assert sol.deltas.max() < 1000 - 9

    def test_no_spread_mode(self):
        cons = [IntervalConstraint(0, 2, 40)]
        sol = solve_axis(4, 100, cons, spread_slack=False)
        check_solution(sol.deltas, 100, cons)

    def test_constraint_beyond_axis_rejected(self):
        with pytest.raises(ValueError):
            solve_axis(3, 100, [IntervalConstraint(0, 5, 10)])


class TestAgainstLP:
    def test_feasible_agreement(self):
        cons = [
            IntervalConstraint(0, 3, 70),
            IntervalConstraint(2, 5, 80),
            IntervalConstraint(5, 8, 60),
        ]
        sol = solve_axis(8, 300, cons)
        lp = solve_axis_lp(8, 300, cons)
        assert lp is not None
        check_solution(sol.deltas, 300, cons)

    def test_infeasible_agreement(self):
        cons = [IntervalConstraint(0, 4, 500)]
        assert solve_axis_lp(4, 100, cons) is None
        with pytest.raises(AxisInfeasibleError):
            solve_axis(4, 100, cons)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_solver_matches_lp_feasibility(data):
    n = data.draw(st.integers(3, 12))
    total = data.draw(st.integers(n, 400))
    n_cons = data.draw(st.integers(0, 6))
    constraints = []
    for _ in range(n_cons):
        a = data.draw(st.integers(0, n - 1))
        b = data.draw(st.integers(a + 1, n))
        length = data.draw(st.integers(1, 150))
        constraints.append(IntervalConstraint(a, b, length))
    lp = solve_axis_lp(n, total, constraints)
    try:
        sol = solve_axis(n, total, constraints)
        assert lp is not None, "longest-path feasible but LP infeasible"
        check_solution(sol.deltas, total, constraints)
    except AxisInfeasibleError:
        assert lp is None, "longest-path infeasible but LP found a solution"
