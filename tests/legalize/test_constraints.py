"""Unit tests for interval-constraint extraction."""

import numpy as np
import pytest

from repro.drc import DesignRules
from repro.legalize import (
    IntervalConstraint,
    extract_axis_constraints,
    requirement_per_line,
)

RULES = DesignRules(min_space=30, min_width=40, min_area=2000, name="test")


class TestIntervalConstraint:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalConstraint(3, 3, 10)
        with pytest.raises(ValueError):
            IntervalConstraint(0, 2, 0)


class TestExtraction:
    def test_interior_width_and_space(self):
        t = np.array([[0, 1, 1, 0, 0, 1, 0]], dtype=np.uint8)
        cons = extract_axis_constraints(t, "x", RULES)
        spans = {(c.start, c.stop): (c.min_length, c.kind) for c in cons}
        assert spans[(1, 3)] == (40, "width")
        assert spans[(3, 5)] == (30, "space")
        assert spans[(5, 6)] == (40, "width")
        # Border 0-runs are exempt.
        assert (0, 1) not in spans
        assert (6, 7) not in spans

    def test_border_width_exempt(self):
        t = np.array([[1, 1, 0, 0, 1]], dtype=np.uint8)
        cons = extract_axis_constraints(t, "x", RULES)
        spans = {(c.start, c.stop) for c in cons}
        assert (0, 2) not in spans  # clipped shape at left border
        assert (4, 5) not in spans  # clipped shape at right border
        assert (2, 4) in spans

    def test_deduplication_across_rows(self):
        t = np.array(
            [[0, 1, 1, 0], [0, 1, 1, 0], [0, 1, 1, 0]], dtype=np.uint8
        )
        cons = extract_axis_constraints(t, "x", RULES)
        assert len([c for c in cons if c.kind == "width"]) == 1

    def test_y_axis(self):
        t = np.array([[0], [1], [1], [0]], dtype=np.uint8)
        cons = extract_axis_constraints(t, "y", RULES)
        assert len(cons) == 1
        assert cons[0].start == 1 and cons[0].stop == 3

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            extract_axis_constraints(np.ones((2, 2), dtype=np.uint8), "z", RULES)


class TestRequirementPerLine:
    def test_uniform_empty(self):
        t = np.zeros((2, 10), dtype=np.uint8)
        req = requirement_per_line(t, "x", RULES)
        assert list(req) == [10, 10]  # min_delta per cell

    def test_feature_row_costs_more(self):
        t = np.zeros((2, 10), dtype=np.uint8)
        t[1, 3:5] = 1
        req = requirement_per_line(t, "x", RULES)
        assert req[1] > req[0]
        # 3 border cells + width 40 + 5 border cells
        assert req[1] == 3 + 40 + 5
