"""Unit tests for the shared-memory arena transport."""

import numpy as np
import pytest

from repro.serve import ArrayRef, ShmArena, ShmError, leaked_segments
from repro.serve.shm import SHM_PREFIX, attach_ref, read_copy, write_into


class TestArrayRef:
    def test_nbytes(self):
        ref = ArrayRef(name="x", shape=(3, 4, 5), dtype="uint8")
        assert ref.nbytes == 60
        assert ArrayRef(name="x", shape=(2,), dtype="float64").nbytes == 16

    def test_tuple_roundtrip(self):
        ref = ArrayRef(name="seg", shape=(2, 8), dtype="uint8", offset=0)
        assert ArrayRef.from_tuple(ref.as_tuple()) == ref


class TestShmArena:
    def test_share_and_take_roundtrip(self):
        rng = np.random.default_rng(0)
        array = rng.integers(0, 2, size=(4, 16, 16)).astype(np.uint8)
        with ShmArena() as arena:
            ref = arena.share(array)
            assert ref.name.startswith(SHM_PREFIX)
            out = arena.take(ref)
            assert np.array_equal(out, array)
            # take released the segment
            assert arena.active == 0

    def test_release_unlinks_at_zero(self):
        arena = ShmArena()
        ref = arena.allocate((8, 8))
        assert arena.active == 1
        arena.release(ref)
        assert arena.active == 0
        # the backing file is gone: attaching now fails
        with pytest.raises(ShmError):
            attach_ref(ref)
        # releasing an already-released ref is a no-op
        arena.release(ref)

    def test_refcount_keeps_segment_alive(self):
        arena = ShmArena()
        ref = arena.allocate((4, 4))
        arena.retain(ref)
        arena.release(ref)
        assert arena.active == 1  # one reference still out
        arena.release(ref)
        assert arena.active == 0

    def test_view_requires_ownership(self):
        arena = ShmArena()
        foreign = ArrayRef(name="never_created", shape=(2,), dtype="uint8")
        with pytest.raises(ShmError):
            arena.view(foreign)
        with pytest.raises(ShmError):
            arena.retain(foreign)

    def test_zero_byte_allocation_rejected(self):
        arena = ShmArena()
        with pytest.raises(ShmError):
            arena.allocate((0, 8))

    def test_close_sweeps_everything(self):
        arena = ShmArena()
        refs = [arena.allocate((4, 4)) for _ in range(3)]
        names = {ref.name for ref in refs}
        assert arena.active == 3
        assert names & set(leaked_segments())
        arena.close()
        assert arena.active == 0
        assert not (names & set(leaked_segments()))

    def test_attach_write_read_cross_view(self):
        # Simulates the executor flow in-process: owner allocates, a
        # detached attacher writes, the owner reads the result back.
        payload = np.arange(64, dtype=np.uint8).reshape(4, 16)
        with ShmArena() as arena:
            ref = arena.allocate(payload.shape)
            write_into(ref, payload)
            assert np.array_equal(read_copy(ref), payload)
            assert np.array_equal(arena.view(ref), payload)

    def test_write_into_shape_mismatch(self):
        with ShmArena() as arena:
            ref = arena.allocate((2, 2))
            with pytest.raises(ShmError):
                write_into(ref, np.zeros((3, 3), dtype=np.uint8))

    def test_leak_listing_only_matches_prefix(self):
        with ShmArena() as arena:
            ref = arena.allocate((2, 2))
            assert ref.name in leaked_segments()
        assert ref.name not in leaked_segments()
