"""Unit tests for the layered serving engine.

Covers the four layers in isolation from the diffusion back-end (stub
models keep these tests fast): admission control (backpressure at
``queue_limit``, typed deadline expiry), the batching policies, the
multi-worker executor pool's lifecycle under concurrent submit/stop, and
multi-model routing through a registry.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    DeadlineExpiredError,
    ModelKey,
    ModelRegistry,
    QueueFullError,
    ServeEngine,
    resolve_batch_policy,
)


class StubModel:
    """A sampling back-end that records every trajectory it runs."""

    def __init__(self, window=16, delay=0.0, supports_steps=True):
        self.window = window
        self.fitted = True
        self.delay = delay
        self.calls = []
        self._calls_lock = threading.Lock()
        if supports_steps:
            self.supports_sampler_steps = True

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        shape = shape or (self.window, self.window)
        with self._calls_lock:
            self.calls.append(
                {"conditions": list(conditions), "shape": tuple(shape), **kwargs}
            )
        if self.delay:
            time.sleep(self.delay)
        return np.zeros((len(conditions), *shape), dtype=np.uint8)


class TestAdmission:
    def test_queue_limit_fast_fails_with_backpressure(self):
        engine = ServeEngine(queue_limit=2, gather_window=0.0)
        client = engine.bind(StubModel())
        jobs = [client.submit(1, 0, seed=i) for i in range(2)]
        with pytest.raises(QueueFullError, match="queue_limit=2"):
            client.submit(1, 0, seed=9)
        stats = engine.stats()
        assert stats.rejected == 1
        assert stats.submitted == 2
        assert stats.queued == 2
        # The accepted jobs still run once the pool comes up.
        with engine:
            for job in jobs:
                assert job.result(timeout=30).shape == (1, 16, 16)
        assert engine.stats().queued == 0

    def test_expired_job_fails_with_typed_error(self):
        engine = ServeEngine(gather_window=0.0)
        client = engine.bind(StubModel())
        doomed = client.submit(1, 0, seed=1, deadline=0.01)
        time.sleep(0.05)  # expires while the pool is still down
        alive = client.submit(1, 0, seed=2)
        with engine:
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=30)
            assert alive.result(timeout=30).shape == (1, 16, 16)
        assert engine.stats().expired == 1

    def test_engine_default_deadline_applies_to_every_job(self):
        engine = ServeEngine(gather_window=0.0, deadline=0.01)
        client = engine.bind(StubModel())
        job = client.submit(1, 0, seed=1)
        assert job.deadline is not None
        time.sleep(0.05)
        with engine:
            with pytest.raises(DeadlineExpiredError):
                job.result(timeout=30)

    def test_bad_submit_arguments_rejected(self):
        engine = ServeEngine()
        client = engine.bind(StubModel())
        with pytest.raises(ValueError):
            client.submit(0, 0)
        with pytest.raises(ValueError):
            client.submit(1, 0, deadline=-1.0)
        with pytest.raises(ValueError):
            ServeEngine(engine_workers=0)
        with pytest.raises(ValueError):
            ServeEngine(queue_limit=0)
        with pytest.raises(ValueError):
            ServeEngine(deadline=0.0)


class TestBatchPolicies:
    def test_resolve_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown batch policy"):
            resolve_batch_policy("fifo")

    def test_greedy_keeps_fifo_window_semantics(self):
        model = StubModel()
        engine = ServeEngine(policy="greedy", gather_window=0.0, max_batch=4)
        client = engine.bind(model)
        # Interleaved shapes: greedy takes a FIFO prefix of 4, which
        # fragments into two 2-sample trajectories per selection.
        jobs = [
            client.submit(1, 0, shape=(16, 16) if i % 2 == 0 else (8, 8), seed=i)
            for i in range(8)
        ]
        with engine:
            for job in jobs:
                job.result(timeout=30)
        stats = engine.stats().scheduler
        assert stats.batches == 4
        assert stats.max_batch_size == 2

    def test_shape_bucketed_coalesces_across_the_whole_queue(self):
        model = StubModel()
        engine = ServeEngine(
            policy="shape_bucketed", gather_window=0.0, max_batch=4
        )
        client = engine.bind(model)
        jobs = [
            client.submit(1, 0, shape=(16, 16) if i % 2 == 0 else (8, 8), seed=i)
            for i in range(8)
        ]
        with engine:
            for job in jobs:
                job.result(timeout=30)
        stats = engine.stats().scheduler
        # The same interleaved workload now forms two full same-shape
        # batches instead of four fragmented ones.
        assert stats.batches == 2
        assert stats.max_batch_size == 4
        for record in engine.batch_records:
            assert record.policy == "shape_bucketed"

    def test_fair_share_prevents_bulk_starvation(self):
        model = StubModel()
        engine = ServeEngine(policy="fair_share", gather_window=0.0, max_batch=4)
        client = engine.bind(model)
        bulk = [
            client.submit(1, 0, seed=i, source="bulk") for i in range(8)
        ]
        live = client.submit(1, 1, seed=99, source="interactive")
        with engine:
            for job in bulk + [live]:
                job.result(timeout=30)
        # The interactive job (submitted LAST, behind 8 bulk jobs) must
        # ride the very first batch instead of waiting out the backlog.
        assert 1 in model.calls[0]["conditions"]

    def test_greedy_would_starve_the_interactive_source(self):
        """The control experiment for the fair-share test above."""
        model = StubModel()
        engine = ServeEngine(policy="greedy", gather_window=0.0, max_batch=4)
        client = engine.bind(model)
        bulk = [client.submit(1, 0, seed=i, source="bulk") for i in range(8)]
        live = client.submit(1, 1, seed=99, source="interactive")
        with engine:
            for job in bulk + [live]:
                job.result(timeout=30)
        assert 1 not in model.calls[0]["conditions"]


class TestExecutorPool:
    def test_multiple_workers_drain_incompatible_batches_in_parallel(self):
        model = StubModel(delay=0.05)
        engine = ServeEngine(
            policy="shape_bucketed", engine_workers=2, gather_window=0.02
        )
        client = engine.bind(model)
        with engine:
            jobs = [
                client.submit(
                    2, 0, shape=(16, 16) if i % 2 == 0 else (8, 8), seed=i
                )
                for i in range(8)
            ]
            for job in jobs:
                job.result(timeout=30)
        workers = {record.worker for record in engine.batch_records}
        assert len(workers) == 2  # both executors actually ran batches

    def test_concurrent_submit_and_stop_never_hang(self):
        model = StubModel(delay=0.002)
        engine = ServeEngine(engine_workers=2, gather_window=0.001)
        engine.start()
        client = engine.bind(model)
        accepted = []
        accepted_lock = threading.Lock()

        def submitter(offset):
            for i in range(20):
                try:
                    job = client.submit(1, 0, seed=offset * 100 + i)
                except RuntimeError:
                    return  # engine stopped underneath us: acceptable
                with accepted_lock:
                    accepted.append(job)
                time.sleep(0.001)

        threads = [
            threading.Thread(target=submitter, args=(t,)) for t in range(3)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.02)
        engine.stop(timeout=30)
        for thread in threads:
            thread.join(timeout=30)
        assert not engine.running
        # Every accepted job resolves: samples from the graceful drain, or
        # a typed failure from the shutdown sweep — never a hang.
        for job in accepted:
            try:
                result = job.result(timeout=10)
            except RuntimeError:
                continue
            assert result.shape == (1, 16, 16)

    def test_graceful_stop_drains_the_queue(self):
        model = StubModel(delay=0.01)
        engine = ServeEngine(engine_workers=2, gather_window=0.2)
        client = engine.bind(model)
        jobs = [client.submit(1, 0, seed=i) for i in range(6)]
        engine.start()
        engine.stop(timeout=30)  # must not wait out the gather window 6x
        for job in jobs:
            assert job.result(timeout=1).shape == (1, 16, 16)

    def test_restart_after_stop(self):
        engine = ServeEngine(gather_window=0.0)
        client = engine.bind(StubModel())
        with engine:
            client.submit(1, 0, seed=1).result(timeout=30)
        with pytest.raises(RuntimeError, match="stopped"):
            client.submit(1, 0, seed=2)
        with engine:
            assert client.submit(1, 0, seed=3).result(timeout=30).shape == (
                1, 16, 16,
            )


class TestRouting:
    def _registry(self):
        return ModelRegistry(
            builder=lambda key: StubModel(window=key.window)
        )

    def test_one_engine_serves_two_model_keys_concurrently(self):
        registry = self._registry()
        engine = ServeEngine(
            registry=registry,
            policy="fair_share",
            engine_workers=2,
            gather_window=0.02,
        )
        tenant_a = engine.bind(ModelKey(window=16), source="tenant-a")
        tenant_b = engine.bind(ModelKey(window=24), source="tenant-b")
        assert tenant_a.model is not tenant_b.model
        results = {}

        def run(name, client, count):
            results[name] = [
                client.submit(1, i % 2, seed=i).result(timeout=30)
                for i in range(count)
            ]

        with engine:
            threads = [
                threading.Thread(target=run, args=("a", tenant_a, 4)),
                threading.Thread(target=run, args=("b", tenant_b, 4)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert all(r.shape == (1, 16, 16) for r in results["a"])
        assert all(r.shape == (1, 24, 24) for r in results["b"])
        stats = engine.stats()
        assert stats.models == 2
        assert stats.policy == "fair_share"
        # Per-binding stats are scoped to each tenant's model.
        assert tenant_a.stats().samples == 4
        assert tenant_b.stats().samples == 4
        labels = {record.model for record in engine.batch_records}
        assert labels == {tenant_a.label, tenant_b.label}

    def test_binding_same_model_twice_shares_batches(self):
        model = StubModel()
        engine = ServeEngine(gather_window=0.05)
        first = engine.bind(model)
        second = engine.bind(model)
        a = first.submit(1, 0, seed=1)
        b = second.submit(1, 1, seed=2)
        with engine:
            a.result(timeout=30)
            b.result(timeout=30)
        # Same back-end => same trajectory, even across bindings.
        stats = engine.stats().scheduler
        assert stats.batches == 1
        assert stats.max_batch_size == 2

    def test_binding_a_key_requires_a_registry(self):
        engine = ServeEngine()
        with pytest.raises(ValueError, match="registry"):
            engine.bind(ModelKey(window=16))

    def test_trajectories_never_mix_models(self):
        registry = self._registry()
        engine = ServeEngine(
            registry=registry, policy="greedy", gather_window=0.05
        )
        # Same shape, different back-ends: must still be two trajectories.
        a = engine.bind(ModelKey(window=16), source="a")
        b = engine.bind(ModelKey(window=16, seed=1), source="b")
        assert a.model is not b.model
        ja = a.submit(1, 0, seed=1)
        jb = b.submit(1, 0, seed=2)
        with engine:
            ja.result(timeout=30)
            jb.result(timeout=30)
        assert engine.stats().scheduler.batches == 2


class TestDeliveryIdentity:
    """Each job must receive ITS samples, however the policy reordered."""

    class MarkerModel:
        """Returns each sample filled with its condition value."""

        window = 16
        fitted = True
        supports_sampler_steps = True

        def sample_batch(self, conditions, rng, shape=None, **kwargs):
            out = np.empty((len(conditions), *shape), dtype=np.uint8)
            for i, condition in enumerate(conditions):
                out[i] = condition
            return out

    @pytest.mark.parametrize(
        "policy", ["greedy", "shape_bucketed", "fair_share"]
    )
    def test_every_job_gets_its_own_samples(self, policy):
        engine = ServeEngine(policy=policy, gather_window=0.0, max_batch=64)
        client = engine.bind(self.MarkerModel())
        jobs = []
        for i in range(12):
            jobs.append(
                client.submit(
                    1 + i % 3,
                    condition=i,  # the per-job payload marker
                    seed=i,
                    source=f"src-{i % 3}",
                )
            )
        with engine:
            for i, job in enumerate(jobs):
                result = job.result(timeout=30)
                assert result.shape[0] == 1 + i % 3
                # Every row of this job's slice carries its own marker —
                # a mis-sliced or reordered batch would leak a neighbor's.
                assert set(np.unique(result)) == {i}

    def test_fair_share_batch_composition_is_arrival_ordered(self):
        """Riders line up by arrival inside a trajectory even when the
        fair-share rotation picked them in interleaved source order, so a
        fixed batch composition reproduces identical sample streams."""
        recorded = []

        class Recorder:
            window = 16
            fitted = True

            def sample_batch(self, conditions, rng, shape=None):
                recorded.append(list(conditions))
                return np.zeros((len(conditions), *shape), dtype=np.uint8)

        engine = ServeEngine(policy="fair_share", gather_window=0.0)
        client = engine.bind(Recorder())
        for i, source in enumerate(["bulk", "bulk", "bulk", "live"]):
            client.submit(1, condition=i, seed=i, source=source)
        with engine:
            pass  # drain on exit
        assert recorded == [[0, 1, 2, 3]]
