"""The online half of self-tuning: the ``adaptive`` policy on the live
engine, the policy registry's typed error, and the config round-trip."""

import threading
import time

import numpy as np
import pytest

from repro.api.config import PipelineConfig, TuneConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    AdaptivePolicy,
    ServeEngine,
    UnknownPolicyError,
    resolve_batch_policy,
)
from repro.serve.engine import FairSharePolicy, GreedyPolicy
from repro.tune import AdaptiveController


class StepRecordingModel:
    """Slow sampling back-end that records each batch's step schedule."""

    def __init__(self, delay=0.0):
        self.window = 16
        self.fitted = True
        self.supports_sampler_steps = True
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def sample_batch(self, conditions, rng, shape=None, sampler_steps=None):
        shape = shape or (self.window, self.window)
        with self._lock:
            self.calls.append(sampler_steps)
        if self.delay:
            time.sleep(self.delay)
        return np.zeros((len(conditions), *shape), dtype=np.uint8)


def pressure_config(**overrides):
    """Hair-trigger controller so tests pressure it with tiny queues."""
    knobs = dict(
        slo_p95=0.5, degrade_ladder=(32, "bucketed"), degrade_after=1,
        restore_after=2, queue_high=3, queue_low=1, tick_interval=0.0,
    )
    knobs.update(overrides)
    return TuneConfig(**knobs)


class TestPolicyRegistry:
    def test_unknown_name_raises_typed_error_listing_known(self):
        with pytest.raises(UnknownPolicyError) as excinfo:
            resolve_batch_policy("fifo")
        err = excinfo.value
        assert isinstance(err, ValueError)  # old except clauses still work
        assert err.policy == "fifo"
        assert err.known == (
            "adaptive", "fair_share", "greedy", "shape_bucketed"
        )
        for name in err.known:
            assert name in str(err)

    def test_engine_constructor_propagates_the_error(self):
        with pytest.raises(UnknownPolicyError):
            ServeEngine(policy="fifo")

    def test_adaptive_resolves_from_the_registry(self):
        policy = resolve_batch_policy("adaptive")
        assert isinstance(policy, AdaptivePolicy)
        assert isinstance(policy.inner, GreedyPolicy)

    def test_instances_pass_through(self):
        fair = FairSharePolicy()
        assert resolve_batch_policy(fair) is fair
        custom = AdaptivePolicy(config=pressure_config())
        assert resolve_batch_policy(custom) is custom

    def test_controller_and_config_are_exclusive(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(
                controller=AdaptiveController(), config=TuneConfig()
            )


class TestServeConfigRoundTrip:
    def test_adaptive_round_trips_through_pipeline_json(self):
        cfg = PipelineConfig()
        cfg = cfg.replace(
            serve=cfg.serve.replace(policy="adaptive"),
            tune=cfg.tune.replace(slo_p95=1.5, degrade_after=3),
        )
        loaded = PipelineConfig.loads(cfg.dumps())
        assert loaded == cfg
        assert loaded.serve.policy == "adaptive"
        assert loaded.tune.slo_p95 == 1.5
        assert loaded.tune.degrade_after == 3

    def test_config_policy_feeds_the_engine(self):
        engine = ServeEngine(policy="adaptive")
        assert isinstance(engine.policy, AdaptivePolicy)


class TestAdaptiveEngine:
    def test_degrades_under_pressure_and_restores_when_calm(self):
        policy = AdaptivePolicy(config=pressure_config())
        metrics = MetricsRegistry()
        engine = ServeEngine(
            policy=policy, gather_window=0.0, metrics=metrics
        )
        model = StepRecordingModel(delay=0.05)
        client = engine.bind(model)
        jobs = [client.submit(1, 0, seed=i) for i in range(12)]
        with engine:
            for job in jobs:
                job.result(timeout=60)
            assert policy.controller.degrades >= 1
            # Idle ticks happen in the dispatcher's wait loop: give the
            # calm streak time to walk the level back to 0.
            deadline = time.time() + 10
            while policy.controller.level > 0 and time.time() < deadline:
                time.sleep(0.05)
            assert policy.controller.level == 0
            assert policy.controller.restores >= 1
            # A post-spike job runs at full requested quality again.
            tail = client.submit(1, 0, seed=99)
            tail.result(timeout=60)
            assert tail.degrade_level == 0
        # The spike's batches ran degraded schedules.
        assert any(steps in (32, "bucketed") for steps in model.calls)
        transitions = metrics.get("repro_adaptive_degrade_total")
        assert transitions.value(direction="degrade") >= 1
        assert transitions.value(direction="restore") >= 1
        assert metrics.get("repro_adaptive_level").value() == 0.0

    def test_degraded_jobs_carry_their_original_ask(self):
        policy = AdaptivePolicy(config=pressure_config())
        engine = ServeEngine(policy=policy, gather_window=0.0)
        model = StepRecordingModel(delay=0.05)
        client = engine.bind(model)
        jobs = [client.submit(1, 0, seed=i) for i in range(12)]
        with engine:
            for job in jobs:
                job.result(timeout=60)
        degraded = [j for j in jobs if j.degrade_level > 0]
        assert degraded
        for job in degraded:
            assert job.requested_sampler_steps is None  # asked for default
            assert job.sampler_steps in (32, "bucketed")

    def test_never_degrades_below_the_floor_or_an_explicit_ask(self):
        policy = AdaptivePolicy(config=pressure_config(floor_steps=32))
        engine = ServeEngine(policy=policy, gather_window=0.0)
        model = StepRecordingModel(delay=0.05)
        client = engine.bind(model)
        jobs = [
            client.submit(1, 0, seed=i, sampler_steps=8) for i in range(12)
        ]
        with engine:
            for job in jobs:
                job.result(timeout=60)
        # Floor 32 stops the ladder's "bucketed" rung; the explicit ask
        # of 8 is already below the floor and must pass through untouched.
        assert set(model.calls) == {8}
        assert all(job.degrade_level == 0 for job in jobs)

    def test_widens_gather_window_while_degraded(self):
        policy = AdaptivePolicy(config=pressure_config(restore_after=10 ** 6))
        engine = ServeEngine(policy=policy, gather_window=0.01)
        model = StepRecordingModel(delay=0.05)
        client = engine.bind(model)
        jobs = [client.submit(1, 0, seed=i) for i in range(12)]
        with engine:
            for job in jobs:
                job.result(timeout=60)
            assert policy.controller.level > 0
            assert engine.gather_window > 0.01
            # Capped: widening must never eat the whole SLO budget.
            assert engine.gather_window <= max(0.01, 0.25 * 0.5)

    def test_load_snapshot_is_publicly_scrapeable(self):
        engine = ServeEngine(gather_window=0.0)
        client = engine.bind(StepRecordingModel())
        client.submit(2, 0, seed=1)
        snapshot = engine.load_snapshot()
        assert snapshot.queue_depth == 1
        assert snapshot.queued_samples == 2
        assert snapshot.workers == engine.engine_workers
        assert snapshot.oldest_wait >= 0.0
        with engine:
            pass


class TestDegradedEngineEvent:
    """A degraded job surfaces a ``degraded`` engine event + trace span."""

    class _FakeEngineJob:
        def __init__(self):
            self.submitted_at = 1.0
            self.selected_at = 2.0
            self.exec_started_at = 2.5
            self.exec_ended_at = 3.0
            self.batch_samples = 4
            self.queue_wait = 1.0
            self.sampler_steps = "bucketed"
            self.requested_sampler_steps = "full"
            self.degrade_level = 2

        def result(self):
            return np.zeros((1, 16, 16), dtype=np.uint8)

    class _FakeScheduler:
        def __init__(self):
            self.model = StepRecordingModel()

        def submit(self, count, condition, **kwargs):
            return TestDegradedEngineEvent._FakeEngineJob()

    class _RecordingJob:
        def __init__(self):
            self.events = []

        def check_cancelled(self):
            pass

        def record_engine(self, hop, started, ended, **fields):
            self.events.append((hop, fields))

    def test_degraded_hop_is_recorded_with_the_original_ask(self):
        from repro.serve import BatchedSamplingModel

        lifecycle = self._RecordingJob()
        client = BatchedSamplingModel(
            self._FakeScheduler(), job=lifecycle
        )
        client.sample(1, 0, np.random.default_rng(0))
        hops = dict(lifecycle.events)
        assert "degraded" in hops
        assert hops["degraded"] == {
            "level": 2,
            "sampler_steps": "bucketed",
            "requested": "full",
        }
        assert client.degraded_jobs == 1
        # Undegraded jobs don't emit the hop.
        plain = self._FakeEngineJob()
        plain.degrade_level = 0

        class PlainScheduler(self._FakeScheduler):
            def submit(self, count, condition, **kwargs):
                return plain

        quiet = self._RecordingJob()
        client2 = BatchedSamplingModel(PlainScheduler(), job=quiet)
        client2.sample(1, 0, np.random.default_rng(0))
        assert "degraded" not in dict(quiet.events)
        assert client2.degraded_jobs == 0
