"""Executor-tier tests: thread/process parity, supervision, crash recovery.

The process tests use a real (tiny) fitted model resolved through a disk
registry, because worker processes genuinely reload it by recipe hash —
a stub would not survive the spawn boundary.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    ModelKey,
    ModelRegistry,
    ProcessExecutor,
    ServeEngine,
    ThreadExecutor,
    WorkerCrashedError,
    leaked_segments,
    resolve_executor,
)
from repro.serve.executors import ExecutorError

#: The smallest recipe the dataset builder can extract tiles for.
TINY_KEY = ModelKey(window=64, train_count=4)


@pytest.fixture(scope="module")
def disk_registry(tmp_path_factory):
    """A disk-backed registry with the tiny model already fitted."""
    cache = tmp_path_factory.mktemp("model-cache")
    registry = ModelRegistry(save_dir=cache)
    registry.get_or_fit(TINY_KEY)
    return registry


def _run_engine(registry, executor, seeds, workers=2, count=3):
    engine = ServeEngine(
        registry=registry,
        executor=executor,
        engine_workers=workers,
        gather_window=0.01,
    )
    model = registry.get_or_fit(TINY_KEY)
    client = engine.bind(model, label="tiny", key=TINY_KEY)
    engine.start()
    try:
        futures = [
            client.submit(count=count, condition=i % 2, seed=seed)
            for i, seed in enumerate(seeds)
        ]
        return [f.result(timeout=240) for f in futures]
    finally:
        engine.stop()


class TestResolveExecutor:
    def test_names(self):
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_instance_passthrough(self):
        backend = ThreadExecutor()
        assert resolve_executor(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            resolve_executor("carrier_pigeon")


class TestProcessRequirements:
    def test_requires_disk_registry(self):
        engine = ServeEngine(executor="process", engine_workers=1)
        model = ModelRegistry().get_or_fit(TINY_KEY)
        engine.bind(model, label="tiny", key=TINY_KEY)
        with pytest.raises(ExecutorError, match="disk tier"):
            engine.start()

    def test_jobs_must_carry_model_key(self, disk_registry):
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        client = engine.bind(model, label="tiny")  # no key
        engine.start()
        try:
            with pytest.raises(ValueError, match="ModelKey"):
                client.submit(count=1, condition=0, seed=1)
        finally:
            engine.stop()


class TestDeterminismAcrossTiers:
    def test_thread_and_process_results_byte_identical(self, disk_registry):
        seeds = [101, 202, 303, 404]
        thread_out = _run_engine(disk_registry, "thread", seeds)
        process_out = _run_engine(disk_registry, "process", seeds)
        assert len(thread_out) == len(process_out) == len(seeds)
        for a, b in zip(thread_out, process_out):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)
        # clean shutdown left no shared-memory segments behind
        assert leaked_segments() == []

    def test_engine_stats_report_executor(self, disk_registry):
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        engine.bind(model, label="tiny", key=TINY_KEY)
        engine.start()
        try:
            assert engine.stats().executor == "process"
            assert engine.stats().as_dict()["executor"] == "process"
        finally:
            engine.stop()
        thread_engine = ServeEngine()
        assert thread_engine.stats().executor == "thread"


class TestCrashRecovery:
    def _kill_busy_workers(self, backend, kills):
        """Kill ``kills`` busy worker processes, one at a time."""
        killed = 0
        deadline = time.monotonic() + 120
        while killed < kills and time.monotonic() < deadline:
            for info in backend.worker_info():
                if info.get("busy") and info.get("pid"):
                    try:
                        os.kill(info["pid"], signal.SIGKILL)
                    except ProcessLookupError:
                        continue
                    killed += 1
                    time.sleep(0.3)
                    break
            time.sleep(0.02)

    def test_single_crash_retries_then_succeeds(self, disk_registry):
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        client = engine.bind(model, label="tiny", key=TINY_KEY)
        engine.start()
        try:
            # warm: worker up + model published before the crash run
            client.submit(count=2, condition=0, seed=1).result(timeout=240)
            backend = engine.executor
            killer = threading.Thread(
                target=self._kill_busy_workers, args=(backend, 1)
            )
            killer.start()
            result = client.submit(count=8, condition=0, seed=2).result(
                timeout=240
            )
            killer.join()
            assert result.shape == (8, 64, 64)
            # the respawn was counted
            assert engine._m_worker_restarts.value(worker="0") >= 1
        finally:
            engine.stop()
        assert leaked_segments() == []

    def test_double_crash_is_terminal_and_service_continues(
        self, disk_registry
    ):
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        client = engine.bind(model, label="tiny", key=TINY_KEY)
        engine.start()
        try:
            client.submit(count=2, condition=0, seed=1).result(timeout=240)
            backend = engine.executor
            killer = threading.Thread(
                target=self._kill_busy_workers, args=(backend, 2)
            )
            killer.start()
            future = client.submit(count=8, condition=0, seed=2)
            with pytest.raises(WorkerCrashedError) as excinfo:
                future.result(timeout=240)
            killer.join()
            assert excinfo.value.code == "worker_crashed"
            # the engine keeps serving on a fresh worker afterwards
            result = client.submit(count=2, condition=1, seed=3).result(
                timeout=240
            )
            assert result.shape == (2, 64, 64)
        finally:
            engine.stop()
        assert leaked_segments() == []
