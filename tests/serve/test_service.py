"""Integration tests for the batched PatternService front-end.

The acceptance scenario of the serving subsystem: >= 8 concurrent requests
flow through the micro-batching scheduler (observed batch size > 1) against
a registry-cached model, and legal output lands in the indexed store.
"""

import numpy as np
import pytest

from repro.serve import (
    LibraryStore,
    ModelKey,
    ModelRegistry,
    PatternService,
    ServeRequest,
)

REQUEST = (
    "Generate 2 legal patterns, 64*64 topology, physical size "
    "1024nm * 1024nm, style {style}."
)


@pytest.fixture()
def registry(small_model):
    registry = ModelRegistry()
    registry.put(ModelKey(window=64), small_model)
    return registry


def _requests(count):
    styles = ("Layer-10001", "Layer-10003")
    return [REQUEST.format(style=styles[i % 2]) for i in range(count)]


class TestServeConcurrent:
    def test_eight_concurrent_requests_batch_and_reuse_model(
        self, registry, small_model, tmp_path
    ):
        store = LibraryStore(tmp_path)
        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            store=store,
            gather_window=0.1,
            max_workers=8,
            max_retries=1,
        )
        with service:
            responses = service.serve(_requests(8))

        assert len(responses) == 8
        assert [r.request.request_id for r in responses] == list(range(1, 9))
        assert sum(r.produced for r in responses) > 0

        stats = service.stats()
        # The whole point: concurrent requests coalesced into shared
        # batched trajectories instead of sampling one by one.
        assert stats.scheduler.max_batch_size > 1
        assert stats.scheduler.jobs >= 8
        # The model came from the registry cache, not a fresh fit.
        assert stats.registry["hits"] == 1
        assert stats.registry["misses"] == 0
        # Every legal pattern was persisted (and deduplicated) in the store.
        assert stats.store["unique"] + stats.store["duplicates"] >= sum(
            r.produced for r in responses
        )
        for response in responses:
            assert response.stats.samples >= response.produced
            assert response.stats.wall_seconds > 0
            assert response.stats.mean_batch_size >= 1
            assert "request" in response.summary()

    def test_plain_strings_accepted(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            gather_window=0.02,
            max_retries=0,
        )
        with service:
            responses = service.serve(_requests(2))
        assert all(r.request.objective == "legality" for r in responses)

    def test_serve_empty_is_noop(self, registry):
        service = PatternService(model_key=ModelKey(window=64), registry=registry)
        assert service.serve([]) == []
        assert not service.running

    def test_handle_single_request(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=0
        )
        with service:
            response = service.handle(_requests(1)[0])
        assert response.request.request_id == 1
        assert response.stats.sample_jobs >= 1

    def test_direct_model_bypasses_registry(self, small_model):
        registry = ModelRegistry()
        service = PatternService(
            model=small_model, registry=registry, max_retries=0
        )
        with service:
            service.serve(_requests(1))
        assert registry.stats() == {
            "cached": 0, "hits": 0, "misses": 0, "disk_hits": 0,
        }

    def test_request_ids_continue_across_serve_calls(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=0
        )
        with service:
            first = service.serve(_requests(1))
            second = service.serve(_requests(1))
        assert first[0].request.request_id == 1
        assert second[0].request.request_id == 2
        assert len(service.responses) == 2

    def test_explicit_request_objects_preserved(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=0
        )
        request = ServeRequest(text=_requests(1)[0], objective="diversity")
        with service:
            response = service.serve([request])[0]
        assert response.request is request
        assert response.request.objective == "diversity"

    def test_bad_request_is_fault_isolated(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=0
        )
        bad = (
            "Generate 2 legal patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-99999."
        )
        with service:
            responses = service.serve([_requests(1)[0], bad])
        assert responses[0].ok
        assert responses[0].produced >= 0 and responses[0].error is None
        assert not responses[1].ok
        assert responses[1].produced == 0
        assert "Layer-99999" in responses[1].error
        assert "FAILED" in responses[1].summary()

    def test_stats_aggregate_requests(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=1
        )
        with service:
            responses = service.serve(_requests(2))
        stats = service.stats()
        assert stats.requests == 2
        assert stats.produced == sum(r.produced for r in responses)
        payload = stats.as_dict()
        assert payload["scheduler"]["samples"] >= 2
        assert "registry" in payload

    def test_concurrent_serve_calls_get_unique_request_ids(self, registry):
        from concurrent.futures import ThreadPoolExecutor

        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            max_workers=4,
            max_retries=0,
        )
        with service:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(service.serve, _requests(2)) for _ in range(4)
                ]
                batches = [f.result() for f in futures]
        ids = [r.request.request_id for batch in batches for r in batch]
        # Duplicate ids would collapse two requests onto one derived seed.
        assert len(ids) == 8
        assert len(set(ids)) == 8
        assert sorted(ids) == list(range(1, 9))

    def test_explicit_ids_never_collide_with_auto_ids(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=0
        )
        explicit = ServeRequest(text=_requests(1)[0], request_id=5)
        with service:
            responses = service.serve([explicit, _requests(1)[0]])
            later = service.serve(_requests(1))
        ids = [r.request.request_id for r in responses + later]
        assert ids[0] == 5
        # Auto-assigned ids skip past the explicit one instead of reusing it.
        assert len(set(ids)) == 3
        assert min(ids[1:]) > 5

    def test_request_reports_legalization_time(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=1
        )
        with service:
            response = service.handle(_requests(1)[0])
        # The request pipeline legalizes every candidate pattern on the
        # request's worker thread; the stats must surface that work.
        assert response.stats.legalize_calls >= 1
        assert response.stats.legalize_seconds > 0
        assert "legalize" in response.stats.summary()
        stats = service.stats()
        assert stats.legalize_calls >= response.stats.legalize_calls
        assert stats.legalize_seconds > 0


class TestLegalizeAndStore:
    def test_batch_stage_persists_legal_patterns(
        self, registry, tiny_library, tmp_path
    ):
        store = LibraryStore(tmp_path)
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry, store=store
        )
        topologies = [p.topology for p in tiny_library]
        result = service.legalize_and_store(
            topologies, "Layer-10001", physical_size=(1024, 1024)
        )
        assert result.legality == 1.0
        assert result.wall_seconds > 0
        stats = service.stats()
        assert len(stats.legalize_stages) == 1
        stage = stats.legalize_stages[0]
        assert stage.topologies == len(topologies)
        assert stage.legal == len(topologies)
        assert stage.store_added + stage.store_deduplicated == len(topologies)
        assert stats.as_dict()["legalize_stages"][0]["legal"] == len(
            topologies
        )

    def test_stage_without_store_still_reports(self, registry, tiny_library):
        service = PatternService(
            model_key=ModelKey(window=64), registry=registry
        )
        result = service.legalize_and_store(
            [tiny_library[0].topology], "Layer-10001", physical_size=(1024, 1024)
        )
        assert result.legality == 1.0
        stage = service.stats().legalize_stages[0]
        assert stage.store_added == 0 and stage.store_deduplicated == 0


class TestEngineBackedService:
    def test_multi_worker_fair_share_service_keeps_request_order(
        self, registry
    ):
        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            gather_window=0.05,
            max_workers=8,
            max_retries=0,
            policy="fair_share",
            engine_workers=2,
        )
        with service:
            responses = service.serve(
                [
                    ServeRequest(text=text, source=f"client-{i % 2}")
                    for i, text in enumerate(_requests(8))
                ]
            )
        # Responses come back in submission order regardless of how the
        # pool interleaved their batches.
        assert [r.request.request_id for r in responses] == list(range(1, 9))
        payload = service.stats().as_dict()
        assert payload["engine"]["policy"] == "fair_share"
        assert payload["engine"]["engine_workers"] == 2
        assert payload["engine"]["submitted"] >= 8

    def test_from_config_threads_engine_knobs(self, registry):
        from repro.api import PipelineConfig, ServeConfig, TrainConfig

        config = PipelineConfig(
            train=TrainConfig(window=64),
            serve=ServeConfig(
                policy="shape_bucketed",
                engine_workers=2,
                queue_limit=256,
                deadline=60.0,
                max_retries=0,
            ),
        )
        service = PatternService.from_config(config, registry=registry)
        assert service.policy == "shape_bucketed"
        assert service.engine_workers == 2
        assert service.queue_limit == 256
        assert service.deadline == 60.0
        with service:
            service.serve(_requests(1))
        stats = service.stats()
        assert stats.engine["policy"] == "shape_bucketed"
        assert stats.engine["queue_limit"] == 256

    def test_two_services_share_one_engine(self, registry, small_model):
        from repro.serve import ServeEngine

        # Two tenants with distinct recipes resolving through one engine;
        # the registry maps both keys to the same fitted back-end here, so
        # their sampling even coalesces into shared trajectories.
        registry.put(ModelKey(window=64, seed=1), small_model)
        engine = ServeEngine(
            registry=registry, policy="fair_share", engine_workers=2,
            gather_window=0.05,
        )
        first = PatternService(
            model_key=ModelKey(window=64), registry=registry,
            max_retries=0, engine=engine,
        )
        second = PatternService(
            model_key=ModelKey(window=64, seed=1), registry=registry,
            max_retries=0, engine=engine,
        )
        with engine:
            responses_first = first.serve(_requests(2))
            # A tenant's stop() must NOT kill the shared engine.
            first.stop()
            assert engine.running
            responses_second = second.serve(_requests(2))
        assert all(r.ok for r in responses_first + responses_second)
        assert first.engine is second.engine

    def test_request_deadline_failure_is_typed_and_isolated(self, registry):
        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            gather_window=0.3,  # jobs expire while the batch gathers
            max_retries=0,
        )
        with service:
            responses = service.serve(
                [
                    ServeRequest(text=_requests(1)[0], deadline=1e-4),
                    ServeRequest(text=_requests(1)[0]),
                ]
            )
        assert not responses[0].ok
        # The engine's typed DeadlineExpiredError surfaces through the
        # agent tool layer as the request's failure reason.
        assert "deadline expired" in responses[0].error
        assert responses[1].ok
