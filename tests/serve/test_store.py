"""Unit tests for the content-hash-indexed LibraryStore."""

import numpy as np
import pytest

from repro.serve import LibraryStore, pattern_content_hash
from repro.squish import PatternLibrary, SquishPattern


def _pattern(fill_row=0, style="Layer-10001", size=4, dx=10):
    topology = np.zeros((size, size), dtype=np.uint8)
    topology[fill_row % size] = 1
    return SquishPattern(
        topology=topology,
        dx=np.full(size, dx),
        dy=np.full(size, 10),
        style=style,
    )


class TestContentHash:
    def test_same_topology_same_style_hash_equal(self):
        assert pattern_content_hash(_pattern()) == pattern_content_hash(_pattern())

    def test_geometry_does_not_change_hash(self):
        # Dedup is at topology granularity: delta vectors don't participate.
        assert pattern_content_hash(_pattern(dx=10)) == pattern_content_hash(
            _pattern(dx=20)
        )

    def test_style_and_topology_change_hash(self):
        base = pattern_content_hash(_pattern())
        assert pattern_content_hash(_pattern(style="Layer-10003")) != base
        assert pattern_content_hash(_pattern(fill_row=1)) != base


class TestAddAndDedup:
    def test_add_new_then_duplicate(self, tmp_path):
        store = LibraryStore(tmp_path)
        content_hash, was_new = store.add(_pattern(), legal=True)
        assert was_new
        assert len(store) == 1
        again, was_new = store.add(_pattern())
        assert again == content_hash
        assert not was_new
        assert len(store) == 1
        assert store.stats()["duplicates"] == 1

    def test_duplicate_upgrades_unknown_legality(self, tmp_path):
        store = LibraryStore(tmp_path)
        content_hash, _ = store.add(_pattern())
        assert store.record(content_hash).legal is None
        store.add(_pattern(), legal=True)
        assert store.record(content_hash).legal is True

    def test_add_library_reports_counts(self, tmp_path):
        store = LibraryStore(tmp_path)
        library = PatternLibrary(name="mixed")
        library.add(_pattern(fill_row=0))
        library.add(_pattern(fill_row=1))
        library.add(_pattern(fill_row=0))  # dup of the first
        report = store.add_library(library, legal=True)
        assert report.added == 2
        assert report.deduplicated == 1
        assert len(report.hashes) == 3

    def test_get_round_trips_pattern(self, tmp_path):
        store = LibraryStore(tmp_path)
        pattern = _pattern(fill_row=2)
        content_hash, _ = store.add(pattern)
        loaded = store.get(content_hash)
        assert loaded == pattern
        assert loaded.style == pattern.style

    def test_get_unknown_hash_raises(self, tmp_path):
        with pytest.raises(KeyError):
            LibraryStore(tmp_path).get("deadbeef")


class TestQuery:
    def _populated(self, tmp_path):
        store = LibraryStore(tmp_path)
        store.add(_pattern(fill_row=0, style="Layer-10001", size=4), legal=True)
        store.add(_pattern(fill_row=1, style="Layer-10001", size=8), legal=False)
        store.add(_pattern(fill_row=2, style="Layer-10003", size=8), legal=True)
        return store

    def test_query_by_style(self, tmp_path):
        store = self._populated(tmp_path)
        assert len(store.query(style="Layer-10001")) == 2
        assert len(store.query(style="Layer-10003")) == 1
        assert store.styles() == ["Layer-10001", "Layer-10003"]

    def test_query_by_legality(self, tmp_path):
        store = self._populated(tmp_path)
        assert len(store.query(legal=True)) == 2
        assert len(store.query(legal=False)) == 1

    def test_query_by_size(self, tmp_path):
        store = self._populated(tmp_path)
        assert len(store.query(max_size=4)) == 1
        assert len(store.query(min_size=8)) == 2

    def test_query_limit_and_combined_filters(self, tmp_path):
        store = self._populated(tmp_path)
        assert len(store.query(limit=2)) == 2
        matched = store.query(style="Layer-10001", legal=True)
        assert len(matched) == 1
        assert matched[0].shape == (4, 4)


class TestPersistence:
    def test_reopen_reads_index_back(self, tmp_path):
        store = LibraryStore(tmp_path)
        content_hash, _ = store.add(_pattern(), legal=True)
        store.add(_pattern())  # duplicate counter
        reopened = LibraryStore(tmp_path)
        assert len(reopened) == 1
        record = reopened.record(content_hash)
        assert record.duplicates == 1
        assert record.legal is True
        assert reopened.get(content_hash) == _pattern()

    def test_objects_are_sharded_npz_files(self, tmp_path):
        store = LibraryStore(tmp_path)
        content_hash, _ = store.add(_pattern())
        expected = (
            tmp_path / "objects" / content_hash[:2] / f"{content_hash}.npz"
        )
        assert expected.exists()
        assert store.record(content_hash).file == str(
            expected.relative_to(tmp_path)
        )
