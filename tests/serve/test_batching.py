"""Unit tests for the micro-batching scheduler and its model client."""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import (
    BatchedSamplingModel,
    MicroBatchScheduler,
    model_supports_sampler_steps,
)


class TestSchedulerBatching:
    def test_pre_submitted_jobs_form_one_batch(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.05)
        jobs = [
            scheduler.submit(1, i % 2, seed=i) for i in range(4)
        ]  # queued before the worker starts
        with scheduler:
            results = [job.result(timeout=60) for job in jobs]
        for result in results:
            assert result.shape == (1, 64, 64)
            assert result.dtype == np.uint8
        stats = scheduler.stats()
        assert stats.batches == 1
        assert stats.jobs == 4
        assert stats.max_batch_size == 4
        assert all(job.batch_samples == 4 for job in jobs)
        assert all(job.queue_wait >= 0.0 for job in jobs)

    def test_multi_count_jobs_split_correctly(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.05)
        a = scheduler.submit(2, 0, seed=1)
        b = scheduler.submit(3, 1, seed=2)
        with scheduler:
            ra = a.result(timeout=60)
            rb = b.result(timeout=60)
        assert ra.shape == (2, 64, 64)
        assert rb.shape == (3, 64, 64)
        assert scheduler.stats().samples == 5

    def test_mixed_shapes_grouped_by_shape(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.05)
        a = scheduler.submit(1, 0, shape=(64, 64), seed=1)
        b = scheduler.submit(1, 1, shape=(32, 32), seed=2)
        with scheduler:
            assert a.result(timeout=60).shape == (1, 64, 64)
            assert b.result(timeout=60).shape == (1, 32, 32)
        stats = scheduler.stats()
        # One gather, but two trajectories: shapes cannot share a stack.
        assert stats.batches == 2
        assert stats.max_batch_size == 1

    def test_max_batch_caps_gathering(self, small_model):
        scheduler = MicroBatchScheduler(
            small_model, gather_window=0.05, max_batch=2
        )
        jobs = [scheduler.submit(1, 0, seed=i) for i in range(4)]
        with scheduler:
            for job in jobs:
                job.result(timeout=60)
        assert scheduler.stats().max_batch_size <= 2

    def test_error_propagates_to_every_rider(self):
        def boom(conditions, rng, shape=None):
            raise RuntimeError("backend exploded")

        model = SimpleNamespace(window=16, fitted=True, sample_batch=boom)
        scheduler = MicroBatchScheduler(model, gather_window=0.05)
        jobs = [scheduler.submit(1, 0, seed=i) for i in range(2)]
        with scheduler:
            for job in jobs:
                with pytest.raises(RuntimeError, match="backend exploded"):
                    job.result(timeout=10)

    def test_rejects_bad_arguments(self, small_model):
        scheduler = MicroBatchScheduler(small_model)
        with pytest.raises(ValueError):
            scheduler.submit(0, 0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(small_model, gather_window=-1)
        with pytest.raises(ValueError):
            MicroBatchScheduler(small_model, max_batch=0)


class TestSchedulerLifecycle:
    def test_submit_after_stop_fails_fast(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.01)
        with scheduler:
            scheduler.submit(1, 0, seed=1).result(timeout=60)
        assert not scheduler.running
        # No worker will ever drain the queue again: result() would hang.
        with pytest.raises(RuntimeError, match="stopped"):
            scheduler.submit(1, 0, seed=2)

    def test_restart_after_stop_accepts_jobs_again(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.01)
        with scheduler:
            scheduler.submit(1, 0, seed=1).result(timeout=60)
        with scheduler:  # restart clears the stopped state
            result = scheduler.submit(1, 0, seed=2).result(timeout=60)
        assert result.shape == (1, 64, 64)

    def test_submit_before_start_still_allowed(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.01)
        job = scheduler.submit(1, 0, seed=3)  # queued, worker not up yet
        with scheduler:
            assert job.result(timeout=60).shape == (1, 64, 64)

    def test_stop_before_start_keeps_scheduler_usable(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.01)
        scheduler.stop()  # no-op: never started
        job = scheduler.submit(1, 0, seed=4)
        with scheduler:
            assert job.result(timeout=60).shape == (1, 64, 64)


class TestBatchedSamplingModel:
    def test_delegates_model_attributes(self, small_model):
        scheduler = MicroBatchScheduler(small_model)
        client = BatchedSamplingModel(scheduler)
        assert client.window == small_model.window
        assert client.n_classes == small_model.n_classes
        assert client.fitted is True
        assert client.schedule is small_model.schedule

    def test_sample_rides_scheduler_and_records_stats(self, small_model):
        scheduler = MicroBatchScheduler(small_model, gather_window=0.05)
        client = BatchedSamplingModel(scheduler)
        with scheduler:
            samples = client.sample(2, 0, np.random.default_rng(3))
        assert samples.shape == (2, 64, 64)
        assert client.sample_jobs == 1
        assert client.samples == 2
        assert client.batch_sizes == [2]
        assert scheduler.stats().jobs == 1

    def test_concurrent_clients_coalesce(self, small_model):
        import threading

        scheduler = MicroBatchScheduler(small_model, gather_window=0.2)
        clients = [BatchedSamplingModel(scheduler) for _ in range(4)]
        outputs = [None] * 4

        def worker(i):
            outputs[i] = clients[i].sample(
                1, i % 2, np.random.default_rng(i)
            )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        with scheduler:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert all(out.shape == (1, 64, 64) for out in outputs)
        # All four single-sample jobs rode batched trajectories.
        assert scheduler.stats().max_batch_size > 1


class TestSamplerStepsProtocol:
    """The explicit backend-protocol check replacing signature sniffing."""

    def test_real_model_declares_the_capability(self, small_model):
        assert model_supports_sampler_steps(small_model) is True

    def test_batched_client_inherits_the_declaration(self, small_model):
        scheduler = MicroBatchScheduler(small_model)
        assert model_supports_sampler_steps(
            BatchedSamplingModel(scheduler)
        ) is True

    def test_legacy_backend_without_kwarg_still_serves(self):
        """A pre-protocol stand-in whose ``sample_batch`` would TypeError
        on the kwarg: the scheduler must never forward it."""
        calls = []

        def sample_batch(conditions, rng, shape=None):  # no sampler_steps
            calls.append({"conditions": list(conditions), "shape": shape})
            return np.zeros((len(conditions), *shape), dtype=np.uint8)

        legacy = SimpleNamespace(
            window=16, fitted=True, sample_batch=sample_batch
        )
        assert model_supports_sampler_steps(legacy) is False
        scheduler = MicroBatchScheduler(
            legacy, gather_window=0.01, sampler_steps="bucketed"
        )
        with scheduler:
            result = scheduler.submit(
                2, 0, seed=1, sampler_steps="bucketed"
            ).result(timeout=30)
        assert result.shape == (2, 16, 16)
        assert calls and "sampler_steps" not in calls[0]

    def test_declaring_backend_receives_the_schedule(self):
        calls = []

        def sample_batch(conditions, rng, shape=None, sampler_steps=None):
            calls.append({"sampler_steps": sampler_steps})
            return np.zeros((len(conditions), *shape), dtype=np.uint8)

        modern = SimpleNamespace(
            window=16,
            fitted=True,
            sample_batch=sample_batch,
            supports_sampler_steps=True,
        )
        scheduler = MicroBatchScheduler(
            modern, gather_window=0.01, sampler_steps="bucketed"
        )
        with scheduler:
            scheduler.submit(1, 0, seed=1).result(timeout=30)
        assert calls == [{"sampler_steps": "bucketed"}]


class TestSchedulerEngineKnobs:
    """The engine layers surfaced through the classic scheduler facade."""

    def test_scheduler_exposes_queue_limit_backpressure(self):
        from repro.serve import QueueFullError

        model = SimpleNamespace(
            window=16,
            fitted=True,
            sample_batch=lambda conditions, rng, shape=None: np.zeros(
                (len(conditions), *shape), dtype=np.uint8
            ),
        )
        scheduler = MicroBatchScheduler(model, queue_limit=1)
        scheduler.submit(1, 0, seed=1)
        with pytest.raises(QueueFullError):
            scheduler.submit(1, 0, seed=2)

    def test_multi_worker_scheduler_serves_mixed_shapes(self, small_model):
        scheduler = MicroBatchScheduler(
            small_model,
            gather_window=0.05,
            policy="shape_bucketed",
            engine_workers=2,
        )
        jobs = [
            scheduler.submit(
                1, i % 2, shape=(64, 64) if i % 2 == 0 else (32, 32), seed=i
            )
            for i in range(4)
        ]
        with scheduler:
            shapes = [job.result(timeout=60).shape for job in jobs]
        assert shapes == [(1, 64, 64), (1, 32, 32)] * 2
        engine_stats = scheduler.engine_stats()
        assert engine_stats.engine_workers == 2
        assert engine_stats.policy == "shape_bucketed"
        assert engine_stats.submitted == 4


class TestClientThreadSafety:
    """One client shared across threads: the stat books must balance.

    Operator code (and the engine's own worker threads) may drive a
    single :class:`BatchedSamplingModel` concurrently; ``+=`` on its
    counters is not atomic, so accumulation is locked.  This hammer test
    loses updates reliably on an unlocked implementation.
    """

    def test_hammered_shared_client_keeps_exact_totals(self):
        model = SimpleNamespace(
            window=16,
            fitted=True,
            sample_batch=lambda conditions, rng, shape=None: np.zeros(
                (len(conditions), *shape), dtype=np.uint8
            ),
        )
        scheduler = MicroBatchScheduler(
            model, gather_window=0.001, engine_workers=4
        )
        client = BatchedSamplingModel(scheduler)
        threads_n, per_thread = 8, 25
        errors = []

        def worker(i):
            rng = np.random.default_rng(i)
            try:
                for k in range(per_thread):
                    out = client.sample(1 + (i + k) % 3, 0, rng)
                    assert out.shape[1:] == (16, 16)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads_n)
        ]
        with scheduler:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        expected_jobs = threads_n * per_thread
        expected_samples = sum(
            1 + (i + k) % 3
            for i in range(threads_n)
            for k in range(per_thread)
        )
        # Exact, not approximate: a lost update shows up as a short count.
        assert client.sample_jobs == expected_jobs
        assert client.samples == expected_samples
        assert len(client.batch_sizes) == expected_jobs
        assert client.degraded_jobs == 0
        assert client.queue_wait_seconds >= 0.0
        assert scheduler.stats().jobs == expected_jobs
        assert scheduler.stats().samples == expected_samples
