"""HTTP conformance tests against a live ephemeral-port server.

Every status code in the contract is exercised end to end through real
sockets: 202 (accepted / still running), 200, 400, 404, 405, 409
(cancelled + cancel-conflict), 429 (queue_full) and 504
(deadline_expired), plus /metrics parsed with the repro.obs exposition
parser and the acceptance check that DELETE on a queued job prevents its
execution entirely."""

import threading

import numpy as np
import pytest

from repro.obs.export import parse_exposition
from repro.serve import (
    PatternHttpServer,
    PatternService,
    ServeClient,
    ServeClientError,
)
from repro.serve.jobs import (
    CANCELLED,
    CODE_CANCELLED,
    CODE_DEADLINE_EXPIRED,
    CODE_QUEUE_FULL,
    EXPIRED,
    SUCCEEDED,
)


class StubModel:
    """Instant fake sampler producing legal 16x16 patterns."""

    def __init__(self, window=16):
        self.window = window
        self.fitted = True
        self.n_classes = 2
        self.supports_sampler_steps = True
        self.calls = []
        self._lock = threading.Lock()

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        with self._lock:
            self.calls.append(len(conditions))
        shape = shape or (self.window, self.window)
        out = np.zeros((len(conditions), *shape), dtype=np.uint8)
        out[:, 4:12, 4:12] = 1
        return out


class BlockingModel(StubModel):
    def __init__(self, window=16):
        super().__init__(window)
        self.started = threading.Event()
        self.release = threading.Event()

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        self.started.set()
        if not self.release.wait(timeout=30.0):
            raise RuntimeError("BlockingModel never released")
        return super().sample_batch(conditions, rng, shape=shape, **kwargs)


PARAMS = {"count": 2, "style": "Layer-10001"}


@pytest.fixture()
def live():
    """(server, client, model) on an ephemeral port, torn down after."""
    model = StubModel()
    service = PatternService(model=model, max_workers=2, gather_window=0.0)
    server = PatternHttpServer(service, port=0)
    server.start()
    try:
        yield server, ServeClient(server.url), model
    finally:
        server.stop()


@pytest.fixture()
def blocked():
    """Single-worker server whose model blocks until released."""
    model = BlockingModel()
    service = PatternService(
        model=model, max_workers=1, queue_limit=1, gather_window=0.0
    )
    server = PatternHttpServer(service, port=0)
    server.start()
    try:
        yield server, ServeClient(server.url), model
    finally:
        model.release.set()
        server.stop()


class TestHttpHappyPath:
    def test_submit_poll_result_roundtrip(self, live):
        server, client, _model = live
        assert server.port != 0  # the ephemeral port was resolved
        job_id = client.submit(kind="pipeline", params=PARAMS)
        final = client.wait(job_id, timeout=30.0)
        assert final["state"] == SUCCEEDED
        stages = [e["stage"] for e in final["stage_events"]]
        assert stages == ["sample", "legalize", "score", "persist"]
        states = [t["state"] for t in final["transitions"]]
        assert states[0] == "PENDING" and states[-1] == SUCCEEDED
        times = [t["t"] for t in final["transitions"]]
        assert times == sorted(times)

        result = client.result(job_id)
        assert result["produced"] == 2
        # the wire view keeps timings == stage_events: one record, two views
        assert result["timings"] == result["stage_events"]
        assert result["stats"]["samples"] == 2
        assert len(result["library"]) == 2
        assert "topology" not in result["library"][0]

    def test_result_with_topologies(self, live):
        _server, client, _model = live
        job_id = client.submit(kind="pipeline", params=PARAMS)
        client.wait(job_id, timeout=30.0)
        result = client.result(job_id, include_topologies=True)
        entry = result["library"][0]
        assert entry["shape"] == [16, 16]
        assert entry["topology"][4][4] == 1

    def test_result_202_while_running(self, blocked):
        _server, client, model = blocked
        job_id = client.submit(kind="pipeline", params=PARAMS)
        assert model.started.wait(timeout=10.0)
        with pytest.raises(ServeClientError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 202
        model.release.set()
        assert client.wait(job_id, timeout=30.0)["state"] == SUCCEEDED

    def test_healthz_and_metrics(self, live):
        _server, client, _model = live
        health = client.health()
        assert health["ok"] is True
        job_id = client.submit(kind="pipeline", params=PARAMS)
        client.wait(job_id, timeout=30.0)
        families = parse_exposition(client.metrics())
        assert "repro_requests_total" in families
        assert "repro_job_terminal_total" in families
        terminal = families["repro_job_terminal_total"]["samples"]
        succeeded = [
            value
            for _name, labels, value in terminal
            if labels.get("state") == SUCCEEDED
        ]
        assert succeeded and succeeded[0] >= 1


class TestHttpErrors:
    def test_unknown_job_404(self, live):
        _server, client, _model = live
        for method in ("status", "result", "cancel"):
            with pytest.raises(ServeClientError) as excinfo:
                getattr(client, method)("job-999999-deadbeef")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "not_found"

    def test_unknown_route_404_and_405(self, live):
        _server, client, _model = live
        status, _payload = client._request("GET", "/v1/nope")
        assert status == 404
        status, _payload = client._request("PUT", "/v1/jobs")
        assert status == 405

    def test_bad_submit_bodies_400(self, live):
        _server, client, _model = live
        # chat without text
        status, payload = client._request("POST", "/v1/jobs", {"kind": "chat"})
        assert status == 400 and payload["error_code"] == "invalid_request"
        # unknown field
        status, payload = client._request(
            "POST", "/v1/jobs", {"text": "x", "bogus": 1}
        )
        assert status == 400 and "bogus" in payload["error"]

    def test_failed_job_result_maps_invalid_request_to_400(self, live):
        _server, client, _model = live
        job_id = client.submit(
            kind="pipeline", params={"count": 1, "bogus": True}
        )
        final = client.wait(job_id, timeout=30.0)
        assert final["state"] == "FAILED"
        with pytest.raises(ServeClientError) as excinfo:
            client.result(job_id)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_request"

    def test_queue_full_429(self, blocked):
        _server, client, model = blocked
        client.submit(kind="pipeline", params=PARAMS)  # pins the worker
        assert model.started.wait(timeout=10.0)
        client.submit(kind="pipeline", params=PARAMS)  # fills queue_limit=1
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(kind="pipeline", params=PARAMS)
        assert excinfo.value.status == 429
        assert excinfo.value.code == CODE_QUEUE_FULL

    def test_queue_full_429_carries_retry_after(self, blocked):
        """Backpressure responses pace clients: a 429 carries a
        Retry-After header derived from live batch latency."""
        server, client, model = blocked
        client.submit(kind="pipeline", params=PARAMS)  # pins the worker
        assert model.started.wait(timeout=10.0)
        client.submit(kind="pipeline", params=PARAMS)  # fills queue_limit=1
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(kind="pipeline", params=PARAMS)
        assert excinfo.value.status == 429
        assert isinstance(excinfo.value.retry_after, int)
        assert 1 <= excinfo.value.retry_after <= 60
        assert client.last_retry_after == excinfo.value.retry_after
        # the hint matches what the service would advertise right now
        assert excinfo.value.retry_after == server.service.retry_after_hint()
        # non-backpressure responses carry no hint
        client.health()
        assert client.last_retry_after is None

    def test_deadline_expired_504(self, blocked):
        _server, client, model = blocked
        client.submit(kind="pipeline", params=PARAMS)  # pins the worker
        assert model.started.wait(timeout=10.0)
        doomed = client.submit(
            kind="pipeline", params=PARAMS, deadline=0.01
        )
        final = client.wait(doomed, timeout=10.0)
        assert final["state"] == EXPIRED
        with pytest.raises(ServeClientError) as excinfo:
            client.result(doomed)
        assert excinfo.value.status == 504
        assert excinfo.value.code == CODE_DEADLINE_EXPIRED


class TestHttpCancel:
    def test_delete_on_queued_job_prevents_execution(self, blocked):
        """Acceptance: DELETE on a queued job stops it before any work."""
        server, client, model = blocked
        client.submit(kind="pipeline", params=PARAMS)  # pins the worker
        assert model.started.wait(timeout=10.0)
        queued = client.submit(
            kind="pipeline", params={"count": 7, "style": "Layer-10001"}
        )
        assert client.status(queued)["state"] == "QUEUED"
        cancelled = client.cancel(queued)
        assert cancelled["state"] == CANCELLED
        model.release.set()
        final = client.wait(queued, timeout=10.0)
        assert final["state"] == CANCELLED
        assert final["error_code"] == CODE_CANCELLED
        # drain everything, then assert batch size 7 never ran
        server.service.drain()
        assert 7 not in model.calls
        with pytest.raises(ServeClientError) as excinfo:
            client.result(queued)
        assert excinfo.value.status == 409

    def test_cancel_after_success_conflicts_409(self, live):
        _server, client, _model = live
        job_id = client.submit(kind="pipeline", params=PARAMS)
        client.wait(job_id, timeout=30.0)
        with pytest.raises(ServeClientError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "conflict"
        # the job is untouched: still SUCCEEDED, result still served
        assert client.status(job_id)["state"] == SUCCEEDED
        assert client.result(job_id)["produced"] == 2

    def test_double_cancel_idempotent_over_the_wire(self, blocked):
        _server, client, model = blocked
        client.submit(kind="pipeline", params=PARAMS)
        assert model.started.wait(timeout=10.0)
        queued = client.submit(kind="pipeline", params=PARAMS)
        first = client.cancel(queued)
        second = client.cancel(queued)  # idempotent: still 200
        assert first["state"] == second["state"] == CANCELLED
