"""Unit tests for the fitted-model registry."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.api.config import TrainConfig
from repro.serve import ModelKey, ModelRegistry


def _fake_model():
    return SimpleNamespace(fitted=True)


class TestModelKey:
    def test_hashable_and_equal(self):
        a = ModelKey(window=64, train_count=4)
        b = ModelKey(window=64, train_count=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ModelKey(window=128, train_count=4)

    def test_dataset_config_mirrors_key(self):
        key = ModelKey(window=64, tile_nm=1024, map_scale=4, seed=9)
        cfg = key.dataset_config()
        assert cfg.topology_size == 64
        assert cfg.tile_nm == 1024
        assert cfg.map_scale == 4
        assert cfg.seed == 9

    def test_derives_from_train_config(self):
        train = TrainConfig(window=64, train_count=4, seed=9)
        key = ModelKey.from_config(train)
        assert isinstance(key, TrainConfig)
        assert key == ModelKey(window=64, train_count=4, seed=9)
        assert key.recipe_hash() == train.recipe_hash()
        # an actual ModelKey passes through untouched
        assert ModelKey.from_config(key) is key

    def test_recipe_hash_distinguishes_recipes(self):
        base = ModelKey(window=64)
        assert base.recipe_hash() == ModelKey(window=64).recipe_hash()
        assert base.recipe_hash() != ModelKey(window=128).recipe_hash()


class TestModelRegistry:
    def test_fits_once_then_hits(self):
        calls = []

        def builder(key):
            calls.append(key)
            return _fake_model()

        registry = ModelRegistry(builder=builder)
        key = ModelKey(window=64)
        first = registry.get_or_fit(key)
        second = registry.get_or_fit(key)
        assert first is second
        assert len(calls) == 1
        assert registry.stats() == {
            "cached": 1, "hits": 1, "misses": 1, "disk_hits": 0,
        }

    def test_train_config_and_model_key_share_one_cache_slot(self):
        calls = []

        def builder(key):
            calls.append(key)
            return _fake_model()

        registry = ModelRegistry(builder=builder)
        a = registry.get_or_fit(TrainConfig(window=64, train_count=4))
        b = registry.get_or_fit(ModelKey(window=64, train_count=4))
        assert a is b
        assert len(calls) == 1

    def test_distinct_keys_distinct_models(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        a = registry.get_or_fit(ModelKey(window=64))
        b = registry.get_or_fit(ModelKey(window=128))
        assert a is not b
        assert len(registry) == 2

    def test_put_requires_fitted(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        with pytest.raises(ValueError):
            registry.put(ModelKey(), SimpleNamespace(fitted=False))

    def test_put_then_get_is_hit(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        key = ModelKey(window=64)
        model = _fake_model()
        registry.put(key, model)
        assert key in registry
        assert registry.get_or_fit(key) is model
        assert registry.stats()["misses"] == 0

    def test_lru_eviction(self):
        registry = ModelRegistry(builder=lambda key: _fake_model(), max_models=2)
        keys = [ModelKey(window=w) for w in (32, 64, 128)]
        for key in keys:
            registry.get_or_fit(key)
        assert keys[0] not in registry
        assert keys[1] in registry and keys[2] in registry

    def test_concurrent_requests_fit_exactly_once(self):
        calls = []

        def slow_builder(key):
            calls.append(key)
            time.sleep(0.05)
            return _fake_model()

        registry = ModelRegistry(builder=slow_builder)
        key = ModelKey(window=64)
        results = []

        def worker():
            results.append(registry.get_or_fit(key))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(model is results[0] for model in results)


class TestDiskCache:
    """The persistent tier: fitted models survive across registries
    (i.e. across processes) keyed by the TrainConfig recipe hash."""

    @staticmethod
    def _counting_builder(calls):
        def builder(key):
            calls.append(key)
            return SimpleNamespace(fitted=True, recipe=key.as_dict())

        return builder

    def test_second_registry_hits_disk_instead_of_refitting(self, tmp_path):
        key = ModelKey(window=64, train_count=4)
        first_calls = []
        first = ModelRegistry(
            builder=self._counting_builder(first_calls), save_dir=tmp_path
        )
        model, source = first.resolve(key)
        assert source == "fit"
        assert first.cache_path(key).exists()
        assert len(first_calls) == 1

        # "new process": a fresh registry over the same save_dir
        second_calls = []
        second = ModelRegistry(
            builder=self._counting_builder(second_calls), save_dir=tmp_path
        )
        loaded, source = second.resolve(key)
        assert source == "disk"
        assert second_calls == []  # no retraining
        assert loaded.recipe == model.recipe
        assert second.stats()["disk_hits"] == 1
        # and the loaded model is now memory-resident
        again, source = second.resolve(key)
        assert again is loaded and source == "memory"

    def test_different_recipe_misses_disk(self, tmp_path):
        calls = []
        registry = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        registry.get_or_fit(ModelKey(window=64, train_count=4))
        fresh = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        _, source = fresh.resolve(ModelKey(window=64, train_count=8))
        assert source == "fit"
        assert len(calls) == 2

    def test_train_config_resolves_same_disk_entry(self, tmp_path):
        calls = []
        registry = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        registry.get_or_fit(TrainConfig(window=64, train_count=4))
        fresh = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        _, source = fresh.resolve(ModelKey(window=64, train_count=4))
        assert source == "disk"
        assert len(calls) == 1

    def test_corrupt_cache_file_degrades_to_refit(self, tmp_path):
        calls = []
        key = ModelKey(window=64, train_count=4)
        registry = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        registry.get_or_fit(key)
        registry.cache_path(key).write_bytes(b"not a pickle")
        fresh = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        _, source = fresh.resolve(key)
        assert source == "fit"
        assert len(calls) == 2
        # the refit repaired the cache entry
        final = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        _, source = final.resolve(key)
        assert source == "disk"

    def test_save_dir_expands_user(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HOME", str(tmp_path))
        registry = ModelRegistry(
            builder=lambda key: _fake_model(), save_dir="~/model-cache"
        )
        assert registry.save_dir == tmp_path / "model-cache"
        registry.get_or_fit(ModelKey(window=64))
        assert (tmp_path / "model-cache").is_dir()

    def test_no_save_dir_means_no_disk_tier(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        assert registry.cache_path(ModelKey()) is None
        _, source = registry.resolve(ModelKey(window=64))
        assert source == "fit"


class TestRealFit:
    def test_fit_model_trains_a_usable_backend(self):
        import numpy as np

        registry = ModelRegistry()
        key = ModelKey(window=64, train_count=4, tile_nm=1024, seed=7)
        model = registry.get_or_fit(key)
        assert model.fitted
        assert model.window == 64
        assert model.n_classes == 2
        samples = model.sample_batch([0, 1], np.random.default_rng(0))
        assert samples.shape == (2, 64, 64)


class TestCompiledRehydration:
    """The disk tier must always serve the compiled sampling representation."""

    KEY = dict(window=64, train_count=4, tile_nm=1024, seed=7)

    def test_fit_and_disk_hit_are_compiled(self, tmp_path):
        registry = ModelRegistry(save_dir=tmp_path)
        model = registry.get_or_fit(ModelKey(**self.KEY))
        assert model.denoiser.compiled
        fresh = ModelRegistry(save_dir=tmp_path)
        loaded, source = fresh.resolve(ModelKey(**self.KEY))
        assert source == "disk"
        assert loaded.denoiser.compiled

    def test_payload_records_compiled_provenance(self, tmp_path):
        import pickle

        registry = ModelRegistry(save_dir=tmp_path)
        key = ModelKey(**self.KEY)
        registry.get_or_fit(key)
        with open(registry.cache_path(key), "rb") as handle:
            payload = pickle.load(handle)
        assert payload["compiled_tables"] is True

    def test_legacy_payload_recompiled_on_load(self, tmp_path):
        registry = ModelRegistry(save_dir=tmp_path)
        key = ModelKey(**self.KEY)
        model = registry.get_or_fit(key)
        # Emulate a cache entry written before compiled tables existed.
        for attr in ("_compiled", "_logit_tables", "_weight_total",
                     "_pads", "use_compiled"):
            model.denoiser.__dict__.pop(attr, None)
        registry._save_to_disk(key, model)
        fresh = ModelRegistry(save_dir=tmp_path)
        loaded, source = fresh.resolve(key)
        assert source == "disk"
        assert loaded.denoiser.compiled
        import numpy as np

        samples = loaded.sample_batch([0, 1], np.random.default_rng(0))
        assert samples.shape == (2, 64, 64)


class TestDiskCacheHardening:
    """PR 8 hardening: bounded-retry reads, cross-process single-flight
    fits, and the executor publish path (``ensure_on_disk``)."""

    @staticmethod
    def _counting_builder(calls):
        def builder(key):
            calls.append(key)
            return SimpleNamespace(fitted=True, recipe=key.as_dict())

        return builder

    def test_transient_partial_read_heals_on_retry(self, tmp_path, monkeypatch):
        key = ModelKey(window=64, train_count=4)
        writer = ModelRegistry(
            builder=self._counting_builder([]), save_dir=tmp_path
        )
        writer.get_or_fit(key)
        path = writer.cache_path(key)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])  # torn write

        # The retry sleep doubles as the concurrent writer finishing its
        # atomic replace: after it, the file is whole again.
        sleeps = []

        def heal(duration):
            sleeps.append(duration)
            path.write_bytes(good)

        monkeypatch.setattr("repro.serve.registry.time.sleep", heal)

        def exploding_builder(builder_key):
            raise AssertionError("a transient read must not trigger a refit")

        reader = ModelRegistry(builder=exploding_builder, save_dir=tmp_path)
        model, source = reader.resolve(key)
        assert source == "disk"
        assert model.fitted
        assert sleeps  # at least one bounded retry happened

    def test_durably_corrupt_file_exhausts_retries_and_refits(self, tmp_path):
        calls = []
        key = ModelKey(window=64, train_count=4)
        registry = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        registry.get_or_fit(key)
        registry.cache_path(key).write_bytes(b"\x80garbage forever")
        fresh = ModelRegistry(
            builder=self._counting_builder(calls), save_dir=tmp_path
        )
        _, source = fresh.resolve(key)
        assert source == "fit"
        assert len(calls) == 2

    def test_single_flight_fit_across_registries(self, tmp_path):
        """Two registries sharing a save_dir (stand-in for two processes)
        fit a cold key exactly once: the flock loser re-checks disk."""
        calls = []
        key = ModelKey(window=64, train_count=4)

        def slow_builder(builder_key):
            calls.append(builder_key)
            time.sleep(0.2)
            return SimpleNamespace(fitted=True)

        registries = [
            ModelRegistry(builder=slow_builder, save_dir=tmp_path)
            for _ in range(2)
        ]
        sources = []

        def worker(registry):
            sources.append(registry.resolve(key)[1])

        threads = [
            threading.Thread(target=worker, args=(registry,))
            for registry in registries
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert sorted(sources) == ["disk", "fit"]

    def test_ensure_on_disk_publishes_bound_model(self, tmp_path):
        key = ModelKey(window=64, train_count=4)
        registry = ModelRegistry(save_dir=tmp_path)
        model = SimpleNamespace(fitted=True)
        path = registry.ensure_on_disk(key, model)
        assert path is not None and path.exists()
        # idempotent: a second publish reuses the existing entry
        assert registry.ensure_on_disk(key, model) == path
        # and another registry (process) loads it from disk
        fresh = ModelRegistry(
            builder=self._counting_builder([]), save_dir=tmp_path
        )
        loaded, source = fresh.resolve(key)
        assert source == "disk"
        assert loaded.fitted

    def test_ensure_on_disk_without_disk_tier(self):
        registry = ModelRegistry()
        assert (
            registry.ensure_on_disk(
                ModelKey(window=64), SimpleNamespace(fitted=True)
            )
            is None
        )
