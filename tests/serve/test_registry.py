"""Unit tests for the fitted-model registry."""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.serve import ModelKey, ModelRegistry


def _fake_model():
    return SimpleNamespace(fitted=True)


class TestModelKey:
    def test_hashable_and_equal(self):
        a = ModelKey(window=64, train_count=4)
        b = ModelKey(window=64, train_count=4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ModelKey(window=128, train_count=4)

    def test_dataset_config_mirrors_key(self):
        key = ModelKey(window=64, tile_nm=1024, map_scale=4, seed=9)
        cfg = key.dataset_config()
        assert cfg.topology_size == 64
        assert cfg.tile_nm == 1024
        assert cfg.map_scale == 4
        assert cfg.seed == 9


class TestModelRegistry:
    def test_fits_once_then_hits(self):
        calls = []

        def builder(key):
            calls.append(key)
            return _fake_model()

        registry = ModelRegistry(builder=builder)
        key = ModelKey(window=64)
        first = registry.get_or_fit(key)
        second = registry.get_or_fit(key)
        assert first is second
        assert len(calls) == 1
        assert registry.stats() == {"cached": 1, "hits": 1, "misses": 1}

    def test_distinct_keys_distinct_models(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        a = registry.get_or_fit(ModelKey(window=64))
        b = registry.get_or_fit(ModelKey(window=128))
        assert a is not b
        assert len(registry) == 2

    def test_put_requires_fitted(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        with pytest.raises(ValueError):
            registry.put(ModelKey(), SimpleNamespace(fitted=False))

    def test_put_then_get_is_hit(self):
        registry = ModelRegistry(builder=lambda key: _fake_model())
        key = ModelKey(window=64)
        model = _fake_model()
        registry.put(key, model)
        assert key in registry
        assert registry.get_or_fit(key) is model
        assert registry.stats()["misses"] == 0

    def test_lru_eviction(self):
        registry = ModelRegistry(builder=lambda key: _fake_model(), max_models=2)
        keys = [ModelKey(window=w) for w in (32, 64, 128)]
        for key in keys:
            registry.get_or_fit(key)
        assert keys[0] not in registry
        assert keys[1] in registry and keys[2] in registry

    def test_concurrent_requests_fit_exactly_once(self):
        calls = []

        def slow_builder(key):
            calls.append(key)
            time.sleep(0.05)
            return _fake_model()

        registry = ModelRegistry(builder=slow_builder)
        key = ModelKey(window=64)
        results = []

        def worker():
            results.append(registry.get_or_fit(key))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(model is results[0] for model in results)


class TestRealFit:
    def test_fit_model_trains_a_usable_backend(self):
        import numpy as np

        registry = ModelRegistry()
        key = ModelKey(window=64, train_count=4, tile_nm=1024, seed=7)
        model = registry.get_or_fit(key)
        assert model.fitted
        assert model.window == 64
        assert model.n_classes == 2
        samples = model.sample_batch([0, 1], np.random.default_rng(0))
        assert samples.shape == (2, 64, 64)
