"""Job lifecycle state machine tests: transitions, cancellation, TTL,
and the service-level contract that ``PipelineResult.timings`` and
``Job.stage_events`` are two views of one record."""

import threading
import time

import numpy as np
import pytest

from repro.serve import (
    PatternService,
    QueueFullError,
    ServeRequest,
)
from repro.serve.jobs import (
    CANCELLED,
    CODE_CANCELLED,
    CODE_DEADLINE_EXPIRED,
    CODE_INVALID_REQUEST,
    CODE_QUEUE_FULL,
    EXPIRED,
    FAILED,
    LEGALIZING,
    PENDING,
    PERSISTING,
    QUEUED,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    Job,
    JobCancelled,
    JobStateError,
    JobTable,
    error_code_for,
    terminal_state_for,
)


class StubModel:
    """Instant fake sampler: legal 16x16 patterns, records every call."""

    def __init__(self, window=16):
        self.window = window
        self.fitted = True
        self.n_classes = 2
        self.supports_sampler_steps = True
        self.calls = []
        self._lock = threading.Lock()

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        with self._lock:
            self.calls.append(len(conditions))
        shape = shape or (self.window, self.window)
        out = np.zeros((len(conditions), *shape), dtype=np.uint8)
        out[:, 4:12, 4:12] = 1
        return out


class BlockingModel(StubModel):
    """Blocks inside ``sample_batch`` until released — pins both the
    engine worker and the request worker awaiting the result."""

    def __init__(self, window=16):
        super().__init__(window)
        self.started = threading.Event()
        self.release = threading.Event()

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        self.started.set()
        if not self.release.wait(timeout=30.0):
            raise RuntimeError("BlockingModel never released")
        return super().sample_batch(conditions, rng, shape=shape, **kwargs)


def _pipeline_request(count=2, **extra):
    return ServeRequest(
        text="",
        kind="pipeline",
        params={"count": count, "style": "Layer-10001"},
        **extra,
    )


# -- pure state machine ------------------------------------------------------


class TestJobStateMachine:
    def test_legal_walk_and_monotonic_log(self):
        job = Job("job-1")
        assert job.state == PENDING
        assert job.transition(QUEUED)
        assert job.transition(RUNNING, stage="sample")
        assert job.stage == "sample"
        assert job.transition(LEGALIZING, stage="legalize")
        assert job.transition(RUNNING, stage="score")
        assert job.transition(PERSISTING, stage="persist")
        assert job.succeed(produced=4)
        assert job.state == SUCCEEDED
        assert job.stage is None
        times = [t.t for t in job.transitions]
        assert times == sorted(times)
        states = [t.state for t in job.transitions]
        assert states[0] == PENDING and states[-1] == SUCCEEDED

    def test_illegal_edge_raises(self):
        job = Job("job-2")
        with pytest.raises(JobStateError):
            job.transition("NOT_A_STATE")
        job.transition(RUNNING, stage="sample")
        with pytest.raises(JobStateError):
            job.transition(QUEUED)  # no edges back into the queue

    def test_terminal_states_are_absorbing(self):
        job = Job("job-3")
        job.transition(QUEUED)
        assert job.succeed()
        # every further transition is a no-op, not an error
        assert not job.transition(RUNNING, stage="sample")
        assert not job.fail("late failure")
        assert not job.expire()
        assert job.state == SUCCEEDED
        assert job.error is None

    def test_cancel_while_queued_is_immediate(self):
        job = Job("job-4")
        job.transition(QUEUED)
        assert job.request_cancel()
        assert job.state == CANCELLED
        assert job.error_code == CODE_CANCELLED
        assert job.wait(timeout=0.1)

    def test_double_cancel_idempotent(self):
        job = Job("job-5")
        job.transition(QUEUED)
        assert job.request_cancel()
        assert job.request_cancel()  # second cancel also reports True
        assert job.state == CANCELLED
        assert len([t for t in job.transitions if t.state == CANCELLED]) == 1

    def test_cancel_after_success_is_a_noop(self):
        job = Job("job-6")
        job.transition(RUNNING, stage="sample")
        job.succeed()
        assert not job.request_cancel()
        assert job.state == SUCCEEDED
        assert not job.cancel_requested

    def test_cancel_checkpoint_raises_when_active(self):
        job = Job("job-7")
        job.transition(RUNNING, stage="sample")
        assert job.request_cancel()
        assert job.state == RUNNING  # cooperative: still running
        with pytest.raises(JobCancelled):
            job.check_cancelled()

    def test_enter_stage_maps_states(self):
        job = Job("job-8")
        job.enter_stage("sample")
        assert job.state == RUNNING and job.stage == "sample"
        job.enter_stage("legalize")
        assert job.state == LEGALIZING
        job.enter_stage("persist")
        assert job.state == PERSISTING

    def test_maybe_expire_only_while_waiting(self):
        job = Job("job-9", deadline=0.001)
        time.sleep(0.01)
        assert job.maybe_expire()
        assert job.state == EXPIRED
        assert job.error_code == CODE_DEADLINE_EXPIRED

        active = Job("job-10", deadline=0.001)
        active.transition(RUNNING, stage="sample")
        time.sleep(0.01)
        assert not active.maybe_expire()  # mid-flight jobs are not reaped
        assert active.state == RUNNING

    def test_as_dict_is_json_safe_view(self):
        import json

        job = Job("job-11", request=_pipeline_request())
        job.transition(QUEUED)
        job.record_stage("sample", 0.5, {"produced": 2})
        job.fail("boom", code=CODE_INVALID_REQUEST)
        view = json.loads(json.dumps(job.as_dict()))
        assert view["state"] == FAILED
        assert view["error_code"] == CODE_INVALID_REQUEST
        assert view["request"]["kind"] == "pipeline"
        assert view["stage_events"][0]["stage"] == "sample"

    def test_error_code_mapping(self):
        assert error_code_for(ValueError("bad")) == CODE_INVALID_REQUEST
        assert error_code_for(KeyError("k")) == CODE_INVALID_REQUEST
        assert error_code_for(JobCancelled("c")) == CODE_CANCELLED
        assert error_code_for(RuntimeError("x")) == "internal"
        assert (
            error_code_for(RuntimeError("x"), state=LEGALIZING)
            == "legalize_failed"
        )
        assert terminal_state_for(CODE_CANCELLED) == CANCELLED
        assert terminal_state_for("shutdown") == CANCELLED
        assert terminal_state_for(CODE_DEADLINE_EXPIRED) == EXPIRED
        assert terminal_state_for("internal") == FAILED


class TestJobTable:
    def test_ids_unique_and_counts(self):
        table = JobTable(ttl=60.0)
        jobs = [table.create() for _ in range(5)]
        assert len({j.job_id for j in jobs}) == 5
        jobs[0].transition(QUEUED)
        jobs[1].transition(QUEUED)
        jobs[1].request_cancel()
        assert table.counts()[PENDING] == 3
        assert table.counts()[QUEUED] == 1
        assert table.counts()[CANCELLED] == 1
        assert table.queued_count() == 4  # PENDING + QUEUED

    def test_ttl_purges_terminal_jobs_only(self):
        table = JobTable(ttl=0.05)
        done = table.create()
        live = table.create()
        done.succeed()
        time.sleep(0.1)
        assert table.get(done.job_id) is None
        assert table.get(live.job_id) is live  # live jobs are never purged
        assert len(table) == 1

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            JobTable(ttl=0.0)


# -- service integration -----------------------------------------------------


class TestServiceJobs:
    def test_timings_and_stage_events_are_one_record(self):
        """Acceptance: GET-status progress comes from the same transitions
        that produce ``PipelineResult.timings`` — equal field for field."""
        service = PatternService(
            model=StubModel(), max_workers=2, gather_window=0.0
        )
        try:
            job = service.submit_job(_pipeline_request(count=3))
            assert job.wait(timeout=30.0)
            assert job.state == SUCCEEDED
            result = job.response.result
            assert result.produced == 3
            assert [t.as_dict() for t in result.timings] == [
                e.as_dict() for e in job.stage_events
            ]
            stages = [e.stage for e in job.stage_events]
            assert stages == ["sample", "legalize", "score", "persist"]
        finally:
            service.stop()

    def test_cancel_while_queued_never_executes(self):
        model = BlockingModel()
        service = PatternService(
            model=model, max_workers=1, gather_window=0.0
        )
        try:
            blocker = service.submit_job(_pipeline_request(count=1))
            assert model.started.wait(timeout=10.0)
            # the single request worker is pinned; this one stays QUEUED
            queued = service.submit_job(_pipeline_request(count=7))
            assert queued.state == QUEUED
            cancelled_job, effective = service.cancel_job(queued.job_id)
            assert cancelled_job is queued and effective
            assert queued.state == CANCELLED
            assert queued.error_code == CODE_CANCELLED
            model.release.set()
            assert blocker.wait(timeout=30.0)
            assert queued.wait(timeout=10.0)
            assert blocker.state == SUCCEEDED
            # the distinctive batch size 7 never reached the model
            assert 7 not in model.calls
            assert queued.response is not None
            assert queued.response.error_code == CODE_CANCELLED
        finally:
            model.release.set()
            service.stop()

    def test_cancel_mid_stage_stops_at_next_checkpoint(self):
        model = BlockingModel()
        service = PatternService(
            model=model, max_workers=1, gather_window=0.0
        )
        try:
            job = service.submit_job(_pipeline_request(count=2))
            assert model.started.wait(timeout=10.0)
            assert job.state == RUNNING and job.stage == "sample"
            _, effective = service.cancel_job(job.job_id)
            assert effective
            assert not job.is_terminal  # cooperative, not preemptive
            model.release.set()
            assert job.wait(timeout=30.0)
            # the sample stage finished; legalize's checkpoint raised
            assert job.state == CANCELLED
            assert job.error_code == CODE_CANCELLED
            assert job.response.error_code == CODE_CANCELLED
            stages = [e.stage for e in job.stage_events]
            assert "sample" in stages and "legalize" not in stages
        finally:
            model.release.set()
            service.stop()

    def test_transition_logs_monotonic_under_two_worker_engine(self):
        service = PatternService(
            model=StubModel(),
            max_workers=4,
            engine_workers=2,
            gather_window=0.0,
        )
        try:
            jobs = [service.submit_job(_pipeline_request(count=2)) for _ in range(6)]
            for job in jobs:
                assert job.wait(timeout=60.0)
                assert job.state == SUCCEEDED
                times = [t.t for t in job.transitions]
                assert times == sorted(times)
                states = [t.state for t in job.transitions]
                assert states[0] == PENDING
                assert states[1] == QUEUED
                assert states[-1] == SUCCEEDED
                assert all(s in TERMINAL_STATES for s in states[-1:])
                assert job.engine_events, "engine hops should be mirrored"
        finally:
            service.stop()

    def test_unknown_kind_fails_with_invalid_request_code(self):
        service = PatternService(
            model=StubModel(), max_workers=1, gather_window=0.0
        )
        try:
            job = service.submit_job(ServeRequest(text="", kind="bogus"))
            assert job.wait(timeout=30.0)
            assert job.state == FAILED
            assert job.error_code == CODE_INVALID_REQUEST
            assert job.response.error_code == CODE_INVALID_REQUEST
            assert not job.response.ok
        finally:
            service.stop()

    def test_unknown_pipeline_param_rejected(self):
        service = PatternService(
            model=StubModel(), max_workers=1, gather_window=0.0
        )
        try:
            request = ServeRequest(
                text="", kind="pipeline", params={"count": 1, "bogus": True}
            )
            job = service.submit_job(request)
            assert job.wait(timeout=30.0)
            assert job.state == FAILED
            assert job.error_code == CODE_INVALID_REQUEST
        finally:
            service.stop()

    def test_queue_limit_enforced_on_http_admission_path(self):
        model = BlockingModel()
        service = PatternService(
            model=model, max_workers=1, queue_limit=1, gather_window=0.0
        )
        try:
            blocker = service.submit_job(
                _pipeline_request(count=1), enforce_queue_limit=True
            )
            assert model.started.wait(timeout=10.0)
            queued = service.submit_job(
                _pipeline_request(count=1), enforce_queue_limit=True
            )
            with pytest.raises(QueueFullError) as excinfo:
                service.submit_job(
                    _pipeline_request(count=1), enforce_queue_limit=True
                )
            assert excinfo.value.code == CODE_QUEUE_FULL
            model.release.set()
            assert blocker.wait(timeout=30.0) and queued.wait(timeout=30.0)
        finally:
            model.release.set()
            service.stop()

    def test_deadline_expires_queued_job(self):
        model = BlockingModel()
        service = PatternService(
            model=model, max_workers=1, gather_window=0.0
        )
        try:
            blocker = service.submit_job(_pipeline_request(count=1))
            assert model.started.wait(timeout=10.0)
            doomed = service.submit_job(_pipeline_request(count=1, deadline=0.01))
            time.sleep(0.05)
            view = service.job_status(doomed.job_id)
            assert view["state"] == EXPIRED
            assert view["error_code"] == CODE_DEADLINE_EXPIRED
            model.release.set()
            assert blocker.wait(timeout=30.0)
            assert doomed.wait(timeout=10.0)
            assert doomed.state == EXPIRED
            assert 1 in model.calls  # only the blocker sampled
            assert len(model.calls) == 1
        finally:
            model.release.set()
            service.stop()

    def test_serve_responses_carry_job_ids_and_codes(self):
        service = PatternService(
            model=StubModel(), max_workers=2, gather_window=0.0
        )
        try:
            responses = service.serve(
                [_pipeline_request(count=2), ServeRequest(text="", kind="bogus")]
            )
            assert responses[0].ok and responses[0].error_code is None
            assert responses[0].job_id is not None
            assert not responses[1].ok
            assert responses[1].error_code == CODE_INVALID_REQUEST
            assert service.jobs.get(responses[0].job_id).state == SUCCEEDED
        finally:
            service.stop()
