"""Integration tests: the obs instruments wired through the serve stack.

Engine-level tests use a stub back-end (fast, no diffusion); the
service-level tests ride the session-scoped ``small_model`` like the rest
of the service suite.  The load-bearing case is the queue-depth gauge vs
``EngineStats.queued`` under concurrent submit/drain races — the two views
are maintained independently (gauge in the instrumented hot path, counter
in the engine's own bookkeeping) and must tell the same story.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import ObsConfig, PipelineConfig, ServeConfig, TrainConfig
from repro.obs import NULL_METRICS, MetricsRegistry, parse_exposition
from repro.serve import (
    DeadlineExpiredError,
    ModelKey,
    ModelRegistry,
    PatternService,
    QueueFullError,
    ServeEngine,
    ServeRequest,
)


class StubModel:
    """Minimal sampling back-end for engine-level tests."""

    def __init__(self, window=16, delay=0.0):
        self.window = window
        self.fitted = True
        self.delay = delay
        self.supports_sampler_steps = True

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        shape = shape or (self.window, self.window)
        if self.delay:
            time.sleep(self.delay)
        return np.zeros((len(conditions), *shape), dtype=np.uint8)


class TestEngineInstrumentation:
    def test_counters_and_histograms_populate(self):
        metrics = MetricsRegistry()
        engine = ServeEngine(gather_window=0.0, metrics=metrics)
        client = engine.bind(StubModel())
        with engine:
            jobs = [client.submit(2, 0, seed=i) for i in range(4)]
            for job in jobs:
                job.result(timeout=30)
        stats = engine.stats()

        assert metrics.get("repro_jobs_submitted_total").value() == 4
        assert metrics.get("repro_queue_depth").value() == 0
        batches = metrics.get("repro_batch_size_samples")
        assert batches.count(policy="greedy") == stats.scheduler.batches
        # Batch sizes are in samples: 4 jobs x 2 samples = 8 observed total.
        assert batches.total(policy="greedy") == 8
        latency = metrics.get("repro_batch_latency_seconds")
        assert latency.count(policy="greedy") == stats.scheduler.batches
        gather = metrics.get("repro_gather_latency_seconds")
        assert gather.count(policy="greedy") == stats.scheduler.batches
        assert metrics.get("repro_queue_wait_seconds").count() == 4
        busy = metrics.get("repro_worker_busy_seconds_total")
        assert busy.value(worker="0") == pytest.approx(
            stats.scheduler.busy_seconds
        )

    def test_rejected_and_expired_counters(self):
        metrics = MetricsRegistry()
        engine = ServeEngine(
            queue_limit=1, gather_window=0.0, metrics=metrics
        )
        client = engine.bind(StubModel())
        doomed = client.submit(1, 0, seed=1, deadline=0.01)
        with pytest.raises(QueueFullError):
            client.submit(1, 0, seed=2)
        time.sleep(0.05)  # the queued job expires while the pool is down
        with engine:
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=30)
        assert metrics.get("repro_jobs_submitted_total").value() == 1
        assert metrics.get("repro_jobs_rejected_total").value() == 1
        assert metrics.get("repro_jobs_expired_total").value() == 1
        assert metrics.get("repro_queue_depth").value() == 0

    def test_queue_depth_gauge_tracks_engine_stats_under_races(self):
        """Gauge and ``EngineStats.queued`` agree while submit races drain."""
        metrics = MetricsRegistry()
        engine = ServeEngine(
            gather_window=0.0, max_batch=2, metrics=metrics
        )
        client = engine.bind(StubModel(delay=0.002))
        n_threads, per_thread = 4, 10
        jobs, jobs_lock = [], threading.Lock()
        start = threading.Barrier(n_threads)

        def submitter(base):
            start.wait()
            for i in range(per_thread):
                job = client.submit(1, 0, seed=base * 100 + i)
                with jobs_lock:
                    jobs.append(job)

        threads = [
            threading.Thread(target=submitter, args=(t,))
            for t in range(n_threads)
        ]
        readings = []
        with engine:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Sample both views while the pool is still draining.
            gauge = metrics.get("repro_queue_depth")
            for _ in range(50):
                readings.append((gauge.value(), engine.stats().queued))
            for job in jobs:
                job.result(timeout=30)

        total = n_threads * per_thread
        stats = engine.stats()
        assert stats.submitted == total
        assert metrics.get("repro_jobs_submitted_total").value() == total
        # Every mid-flight reading is a plausible queue depth ...
        for gauge_value, queued in readings:
            assert 0 <= gauge_value <= total
            assert 0 <= queued <= total
        # ... and once drained the two views agree exactly.
        assert stats.queued == 0
        assert metrics.get("repro_queue_depth").value() == 0

    def test_null_metrics_record_nothing(self):
        engine = ServeEngine(gather_window=0.0, metrics=NULL_METRICS)
        client = engine.bind(StubModel())
        with engine:
            client.submit(1, 0, seed=1).result(timeout=30)
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.get("repro_jobs_submitted_total") is None


REQUEST = (
    "Generate 2 legal patterns, 64*64 topology, physical size "
    "1024nm * 1024nm, style Layer-10001."
)


@pytest.fixture()
def registry(small_model):
    registry = ModelRegistry()
    registry.put(ModelKey(window=64), small_model)
    return registry


class TestServiceInstrumentation:
    def test_service_registry_covers_the_whole_request_path(self, small_model):
        # One explicit metrics registry shared by the model registry and
        # the service, so cache counters land beside the request counters.
        metrics = MetricsRegistry()
        registry = ModelRegistry(metrics=metrics)
        registry.put(ModelKey(window=64), small_model)
        service = PatternService(
            model_key=ModelKey(window=64),
            registry=registry,
            gather_window=0.05,
            max_workers=4,
            max_retries=1,
            metrics=metrics,
        )
        with service:
            responses = service.serve(
                [ServeRequest(text=REQUEST) for _ in range(4)]
            )
        assert len(responses) == 4

        metrics = service.metrics
        assert metrics.get("repro_requests_total").value(status="ok") == 4
        assert metrics.get("repro_request_latency_seconds").count() == 4
        assert metrics.get("repro_jobs_submitted_total").value() >= 4
        assert metrics.get("repro_queue_depth").value() == 0
        assert metrics.get("repro_batch_latency_seconds").count(
            policy="greedy"
        ) >= 1
        # Model registry counters live in the same registry.
        assert metrics.get("repro_model_cache_hits_total").value(
            tier="memory"
        ) >= 1
        # The whole thing renders as a parseable exposition payload.
        families = parse_exposition(metrics.to_prometheus())
        for name in (
            "repro_queue_depth",
            "repro_jobs_submitted_total",
            "repro_batch_latency_seconds",
            "repro_requests_total",
        ):
            assert name in families, name

        # Each request produced a span tree rooted at its request id.
        tracer = service.tracer
        assert tracer.enabled
        ids = [r.request.request_id for r in responses]
        for request_id in ids:
            tree = tracer.tree(request_id)
            assert tree is not None
            assert tree["name"] == "request"
            names = {child["name"] for child in tree["children"]}
            assert "sample" in names

    def test_obs_disabled_leaves_null_instruments(self, registry):
        config = PipelineConfig(
            train=TrainConfig(window=64),
            serve=ServeConfig(max_retries=1),
            obs=ObsConfig(enabled=False),
        )
        service = PatternService.from_config(config, registry=registry)
        with service:
            responses = service.serve([REQUEST])
        assert len(responses) == 1
        assert service.metrics.names() == []
        assert not service.tracer.enabled
        assert service.tracer.spans() == []

    def test_two_services_have_independent_registries(self, registry):
        first = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=1
        )
        second = PatternService(
            model_key=ModelKey(window=64), registry=registry, max_retries=1
        )
        assert first.metrics is not second.metrics
        with first:
            first.serve([REQUEST])
        assert first.metrics.get("repro_requests_total").value(status="ok") == 1
        requests = second.metrics.get("repro_requests_total")
        assert requests is None or requests.value(status="ok") == 0
