"""Unit tests for the command-line interface.

The CLI trains its own back-end, which is too slow per-test; these tests
patch ``ChatPattern.pretrained`` to return a session-scoped small model.
"""

import numpy as np
import pytest

from repro import cli
from repro.core import ChatPattern
from repro.io import load_library, save_library
from repro.metrics import legalize_batch


@pytest.fixture(autouse=True)
def fast_pretrained(small_model, monkeypatch):
    def fake(cls=None, **kwargs):
        return ChatPattern(model=small_model, max_retries=0)

    monkeypatch.setattr(ChatPattern, "pretrained", classmethod(
        lambda cls, **kwargs: ChatPattern(model=small_model, max_retries=0)
    ))
    yield


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_chat_args(self):
        args = cli.build_parser().parse_args(["chat", "hello", "-o", "x.npz"])
        assert args.command == "chat"
        assert args.request == "hello"
        assert args.output == "x.npz"


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["generate", "--style", "Layer-10001", "--count", "2",
             "-o", str(out), "--show"]
        )
        captured = capsys.readouterr().out
        assert "generated 2" in captured
        if code == 0:
            assert load_library(out)

    def test_chat(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["chat",
             "Generate 2 layout patterns, 64*64 topology, physical size "
             "1024nm * 1024nm, style Layer-10001.",
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert "sub-task" in captured

    def test_serve(self, tmp_path, capsys):
        out = tmp_path / "served.npz"
        store_dir = tmp_path / "store"
        request = (
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style {style}."
        )
        code = cli.main(
            ["serve",
             request.format(style="Layer-10001"),
             request.format(style="Layer-10003"),
             "--gather-window", "0.1",
             "--store", str(store_dir),
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert "request 1:" in captured
        assert "request 2:" in captured
        assert "service:" in captured
        assert (store_dir / "index.json").exists()
        if code == 0:
            assert len(load_library(out)) >= 2

    def test_serve_requests_file(self, tmp_path, capsys):
        requests_file = tmp_path / "requests.txt"
        requests_file.write_text(
            "# workload\n"
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001.\n"
        )
        cli.main(["serve", "--requests-file", str(requests_file)])
        assert "request 1:" in capsys.readouterr().out

    def test_serve_survives_bad_request(self, tmp_path, capsys):
        out = tmp_path / "partial.npz"
        good = (
            "Generate 1 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001."
        )
        bad = "Generate 1 layout patterns, 64*64 topology, style Layer-99999."
        code = cli.main(["serve", good, bad, "-o", str(out)])
        captured = capsys.readouterr().out
        assert code == 1  # not every request produced
        assert "FAILED" in captured
        assert "Layer-99999" in captured
        if out.exists():  # the good request's output still saved
            assert len(load_library(out)) >= 1

    def test_serve_without_requests_errors(self, capsys):
        assert cli.main(["serve"]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_evaluate_and_export(self, tmp_path, small_model, capsys):
        samples = small_model.sample(2, 0, np.random.default_rng(0))
        result = legalize_batch(list(samples), "Layer-10001",
                                physical_size=(1024, 1024))
        lib_path = tmp_path / "lib.npz"
        save_library(result.legal, lib_path)

        assert cli.main(["evaluate", str(lib_path)]) == 0
        assert "diversity" in capsys.readouterr().out

        gds_path = tmp_path / "lib.gds"
        assert cli.main(["export", str(lib_path), str(gds_path)]) == 0
        assert gds_path.exists()
        assert "wrote" in capsys.readouterr().out
