"""Unit tests for the command-line interface.

The CLI trains its own back-end, which is too slow per-test; these tests
patch ``ChatPattern.pretrained`` to return a session-scoped small model.
"""

import numpy as np
import pytest

from repro import cli
from repro.core import ChatPattern
from repro.io import load_library, save_library
from repro.metrics import legalize_batch


@pytest.fixture(autouse=True)
def fast_pretrained(small_model, monkeypatch):
    def fake(cls=None, **kwargs):
        return ChatPattern(model=small_model, max_retries=0)

    monkeypatch.setattr(ChatPattern, "pretrained", classmethod(
        lambda cls, **kwargs: ChatPattern(model=small_model, max_retries=0)
    ))
    yield


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_chat_args(self):
        args = cli.build_parser().parse_args(["chat", "hello", "-o", "x.npz"])
        assert args.command == "chat"
        assert args.request == "hello"
        assert args.output == "x.npz"


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["generate", "--style", "Layer-10001", "--count", "2",
             "-o", str(out), "--show"]
        )
        captured = capsys.readouterr().out
        assert "generated 2" in captured
        if code == 0:
            assert load_library(out)

    def test_chat(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["chat",
             "Generate 2 layout patterns, 64*64 topology, physical size "
             "1024nm * 1024nm, style Layer-10001.",
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert "sub-task" in captured

    def test_evaluate_and_export(self, tmp_path, small_model, capsys):
        samples = small_model.sample(2, 0, np.random.default_rng(0))
        result = legalize_batch(list(samples), "Layer-10001",
                                physical_size=(1024, 1024))
        lib_path = tmp_path / "lib.npz"
        save_library(result.legal, lib_path)

        assert cli.main(["evaluate", str(lib_path)]) == 0
        assert "diversity" in capsys.readouterr().out

        gds_path = tmp_path / "lib.gds"
        assert cli.main(["export", str(lib_path), str(gds_path)]) == 0
        assert gds_path.exists()
        assert "wrote" in capsys.readouterr().out
