"""Unit tests for the command-line interface.

The CLI resolves its back-end through the pipeline's model registry, which
is too slow per-test; these tests patch the ``_build_pipeline`` seam to
return a pipeline bound to the session-scoped small model.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.api import PatternPipeline, PipelineConfig
from repro.io import load_library, save_library
from repro.metrics import legalize_many


@pytest.fixture(autouse=True)
def fast_pipeline(small_model, monkeypatch):
    built = []

    def fake_build(args, cfg):
        cfg = cfg.replace(serve=cfg.serve.replace(max_retries=0))
        pipeline = PatternPipeline(cfg, model=small_model)
        built.append(pipeline)
        return pipeline

    monkeypatch.setattr(cli, "_build_pipeline", fake_build)
    yield built


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_chat_args(self):
        args = cli.build_parser().parse_args(["chat", "hello", "-o", "x.npz"])
        assert args.command == "chat"
        assert args.request == "hello"
        assert args.output == "x.npz"

    def test_global_flags_accepted_before_and_after_subcommand(self):
        before = cli.build_parser().parse_args(
            ["--model-cache", "mc", "--train-count", "8", "generate"]
        )
        after = cli.build_parser().parse_args(
            ["generate", "--model-cache", "mc", "--train-count", "8"]
        )
        for args in (before, after):
            assert args.model_cache == "mc"
            assert args.train_count == 8

    def test_subcommand_absence_does_not_clobber_global_flag(self):
        args = cli.build_parser().parse_args(["--seed", "5", "generate"])
        assert args.seed == 5


class TestPipelineConfigResolution:
    def test_defaults(self):
        args = cli.build_parser().parse_args(["generate"])
        cfg = cli._pipeline_config(args)
        assert cfg == PipelineConfig()

    def test_cli_flags_override(self):
        args = cli.build_parser().parse_args(
            ["generate", "--train-count", "8", "--seed", "5",
             "--model-cache", "mc"]
        )
        cfg = cli._pipeline_config(args)
        assert cfg.train.train_count == 8
        assert cfg.train.seed == 5
        assert cfg.model_cache == "mc"

    def test_config_file_loaded_and_overridden(self, tmp_path):
        path = tmp_path / "pipeline.json"
        base = PipelineConfig()
        base = base.replace(
            train=base.train.replace(train_count=12, seed=9),
            sample=base.sample.replace(style="Layer-10003", count=3),
        )
        base.save(path)
        args = cli.build_parser().parse_args(
            ["generate", "--config", str(path), "--train-count", "6"]
        )
        cfg = cli._pipeline_config(args)
        assert cfg.train.train_count == 6  # flag wins
        assert cfg.train.seed == 9  # file wins where no flag given
        assert cfg.sample.style == "Layer-10003"
        assert cfg.sample.count == 3

    def test_bad_config_file_rejected(self, tmp_path):
        path = tmp_path / "pipeline.json"
        path.write_text(json.dumps({"train": {"window": 64}, "typo": {}}))
        args = cli.build_parser().parse_args(
            ["generate", "--config", str(path)]
        )
        with pytest.raises(ValueError, match="typo"):
            cli._pipeline_config(args)


class TestCommands:
    def test_generate(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["generate", "--style", "Layer-10001", "--count", "2",
             "-o", str(out), "--show"]
        )
        captured = capsys.readouterr().out
        assert "generated 2" in captured
        if code == 0:
            assert load_library(out)

    def test_generate_uses_config_sample_section(self, tmp_path, capsys):
        path = tmp_path / "pipeline.json"
        cfg = PipelineConfig()
        cfg = cfg.replace(sample=cfg.sample.replace(count=3))
        cfg.save(path)
        cli.main(["generate", "--config", str(path)])
        assert "generated 3" in capsys.readouterr().out

    def test_extend_count_from_config(self, tmp_path, capsys):
        path = tmp_path / "pipeline.json"
        cfg = PipelineConfig()
        cfg = cfg.replace(sample=cfg.sample.replace(count=2, extend_size=96))
        cfg.save(path)
        cli.main(["extend", "--config", str(path)])
        assert "extended 2 pattern(s) to 96x96" in capsys.readouterr().out

    def test_extend_default_count_is_one(self, capsys):
        cli.main(["extend", "--size", "96"])
        assert "extended 1 pattern(s)" in capsys.readouterr().out

    def test_chat(self, tmp_path, capsys):
        out = tmp_path / "lib.npz"
        code = cli.main(
            ["chat",
             "Generate 2 layout patterns, 64*64 topology, physical size "
             "1024nm * 1024nm, style Layer-10001.",
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert "sub-task" in captured

    def test_serve(self, tmp_path, capsys):
        out = tmp_path / "served.npz"
        store_dir = tmp_path / "store"
        request = (
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style {style}."
        )
        code = cli.main(
            ["serve",
             request.format(style="Layer-10001"),
             request.format(style="Layer-10003"),
             "--gather-window", "0.1",
             "--store", str(store_dir),
             "-o", str(out)]
        )
        captured = capsys.readouterr().out
        assert "request 1:" in captured
        assert "request 2:" in captured
        assert "service:" in captured
        assert (store_dir / "index.json").exists()
        if code == 0:
            assert len(load_library(out)) >= 2

    def test_serve_requests_file(self, tmp_path, capsys):
        requests_file = tmp_path / "requests.txt"
        requests_file.write_text(
            "# workload\n"
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001.\n"
        )
        cli.main(["serve", "--requests-file", str(requests_file)])
        assert "request 1:" in capsys.readouterr().out

    def test_serve_survives_bad_request(self, tmp_path, capsys):
        out = tmp_path / "partial.npz"
        good = (
            "Generate 1 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001."
        )
        bad = "Generate 1 layout patterns, 64*64 topology, style Layer-99999."
        code = cli.main(["serve", good, bad, "-o", str(out)])
        captured = capsys.readouterr().out
        assert code == 1  # not every request produced
        assert "FAILED" in captured
        assert "Layer-99999" in captured
        if out.exists():  # the good request's output still saved
            assert len(load_library(out)) >= 1

    def test_serve_without_requests_errors(self, capsys):
        assert cli.main(["serve"]) == 2
        assert "no requests" in capsys.readouterr().err

    def test_evaluate_and_export(self, tmp_path, small_model, capsys):
        samples = small_model.sample(2, 0, np.random.default_rng(0))
        result = legalize_many(
            list(samples), "Layer-10001", physical_size=(1024, 1024),
            max_workers=1, fault_isolation=False,
        )
        lib_path = tmp_path / "lib.npz"
        save_library(result.legal, lib_path)

        assert cli.main(["evaluate", str(lib_path)]) == 0
        assert "diversity" in capsys.readouterr().out

        gds_path = tmp_path / "lib.gds"
        assert cli.main(["export", str(lib_path), str(gds_path)]) == 0
        assert gds_path.exists()
        assert "wrote" in capsys.readouterr().out


class TestServeEngineFlags:
    def test_serve_engine_flags_reach_the_service(self, capsys, fast_pipeline):
        request = (
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style {style}."
        )
        code = cli.main(
            ["serve",
             request.format(style="Layer-10001"),
             request.format(style="Layer-10003"),
             "--policy", "fair_share",
             "--engine-workers", "2",
             "--queue-limit", "64",
             "--deadline", "30",
             "--gather-window", "0.05"]
        )
        captured = capsys.readouterr().out
        # Responses print in request order and the engine section of the
        # service stats reflects the flags.
        assert captured.index("request 1:") < captured.index("request 2:")
        assert "'policy': 'fair_share'" in captured
        assert "'engine_workers': 2" in captured
        assert "'queue_limit': 64" in captured
        built_cfg = fast_pipeline[-1].config.serve
        assert built_cfg.policy == "fair_share"
        assert built_cfg.engine_workers == 2
        assert built_cfg.queue_limit == 64
        assert built_cfg.deadline == 30.0

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["serve", "x", "--policy", "fifo"])


class TestTuneCommand:
    def spec_path(self, tmp_path):
        from repro.tune import WorkloadPhase, WorkloadSpec

        spec = WorkloadSpec(
            name="mini-spike", seed=3,
            phases=(
                WorkloadPhase(duration=2.0, rate=2.0, count=2),
                WorkloadPhase(duration=1.0, rate=16.0, count=2,
                              source="bulk"),
                WorkloadPhase(duration=2.0, rate=2.0, count=2),
            ),
        )
        return spec.save(tmp_path / "workload.json")

    def test_tune_emits_report_and_loadable_config(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        out = tmp_path / "tuned.json"
        report = tmp_path / "report.txt"
        code = cli.main(
            ["tune", str(spec), "--budget", "8", "--slo", "1.0",
             "-o", str(out), "--report", str(report)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "winner:" in captured
        assert "serve knobs:" in captured
        assert report.read_text() in captured
        tuned = PipelineConfig.load(out)  # loadable and servable as-is
        from repro.api.config import SERVE_POLICIES

        assert tuned.serve.policy in SERVE_POLICIES

    def test_tune_is_deterministic_for_a_fixed_seed(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        one, two = tmp_path / "one.json", tmp_path / "two.json"
        assert cli.main(
            ["tune", str(spec), "--budget", "8", "-o", str(one)]
        ) == 0
        assert cli.main(
            ["tune", str(spec), "--budget", "8", "-o", str(two)]
        ) == 0
        capsys.readouterr()
        assert one.read_text() == two.read_text()

    def test_seed_flag_overrides_the_spec_seed(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        assert cli.main(["tune", str(spec), "--budget", "4",
                         "--seed", "99"]) == 0
        assert "seed 99" in capsys.readouterr().out

    def test_missing_and_malformed_specs_exit_2(self, tmp_path, capsys):
        assert cli.main(["tune", str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{\"name\": \"x\"}")  # no phases
        assert cli.main(["tune", str(bad)]) == 2
        capsys.readouterr()

    def test_bad_slo_exits_2(self, tmp_path, capsys):
        spec = self.spec_path(tmp_path)
        assert cli.main(["tune", str(spec), "--slo", "-1.0"]) == 2
        capsys.readouterr()


class TestStatsWatch:
    def snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({
            "metrics": [
                {"name": "repro_adaptive_level", "type": "gauge",
                 "series": [{"labels": {}, "value": 1.0}]},
            ],
        }))
        return path

    def test_watch_renders_the_requested_iterations(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        code = cli.main(
            ["stats", str(path), "--watch", "0.01", "--iterations", "3"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert captured.count("repro_adaptive_level = 1") == 3
        assert captured.count("every 0.01s") == 3

    def test_watch_rejects_nonpositive_interval(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        assert cli.main(["stats", str(path), "--watch", "0"]) == 2
        capsys.readouterr()

    def test_watch_reports_missing_snapshot(self, tmp_path, capsys):
        absent = tmp_path / "absent.json"
        code = cli.main(
            ["stats", str(absent), "--watch", "0.01", "--iterations", "1"]
        )
        assert code == 2
        capsys.readouterr()

    def test_one_shot_stats_still_works(self, tmp_path, capsys):
        path = self.snapshot(tmp_path)
        assert cli.main(["stats", str(path)]) == 0
        assert "repro_adaptive_level = 1" in capsys.readouterr().out
