"""Unit tests for requirement lists and their text template."""

import pytest

from repro.agent import RequirementList, parse_requirement_lists


def make_req(**overrides):
    kwargs = dict(
        topology_size=(200, 200),
        physical_size=(1500, 1500),
        style="Layer-10001",
        count=50_000,
        extension_method="Out",
        drop_allowed=True,
    )
    kwargs.update(overrides)
    return RequirementList(**kwargs)


class TestRequirementList:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_req(count=0)
        with pytest.raises(ValueError):
            make_req(extension_method="Sideways")
        with pytest.raises(ValueError):
            make_req(topology_size=(0, 10))

    def test_needs_extension(self):
        assert make_req().needs_extension(128)
        assert not make_req(topology_size=(128, 128)).needs_extension(128)

    def test_to_text_matches_paper_template(self):
        text = make_req().to_text()
        assert "# Requirement - subtask 1" in text
        assert "Topology Size: [200, 200]" in text
        assert "Physical Size: [1500, 1500] nm" in text
        assert "Style: Layer-10001" in text
        assert "Count: 50000" in text
        assert "Extension Method: Out (Default: Out)" in text
        assert "Drop Allowed: True (Default: True)" in text
        assert "Time Limitation: None (Default: None)" in text


class TestParsing:
    def test_round_trip(self):
        req = make_req()
        parsed = parse_requirement_lists(req.to_text())
        assert len(parsed) == 1
        got = parsed[0]
        assert got.topology_size == req.topology_size
        assert got.physical_size == req.physical_size
        assert got.style == req.style
        assert got.count == req.count
        assert got.extension_method == req.extension_method
        assert got.drop_allowed == req.drop_allowed

    def test_round_trip_none_method(self):
        req = make_req(extension_method=None, topology_size=(128, 128))
        parsed = parse_requirement_lists(req.to_text())[0]
        assert parsed.extension_method is None

    def test_multiple_subtasks(self):
        text = make_req().to_text() + "\n" + make_req(
            topology_size=(500, 500), subtask_id=2
        ).to_text()
        parsed = parse_requirement_lists(text)
        assert len(parsed) == 2
        assert parsed[1].subtask_id == 2
        assert parsed[1].topology_size == (500, 500)

    def test_time_limit_parsed(self):
        req = make_req(time_limit=30.0)
        parsed = parse_requirement_lists(req.to_text())[0]
        assert parsed.time_limit == 30.0

    def test_missing_block_raises(self):
        with pytest.raises(ValueError):
            parse_requirement_lists("no requirements here")

    def test_missing_field_raises(self):
        broken = "# Requirement - subtask 1\n## Basic Part: Count: 10,"
        with pytest.raises(ValueError):
            parse_requirement_lists(broken)

    def test_tolerates_comma_separated_counts(self):
        text = make_req().to_text().replace("Count: 50000", "Count: 50,000")
        assert parse_requirement_lists(text)[0].count == 50_000
