"""Unit tests for the LLM backends (simulated + scripted)."""

import pytest

from repro.agent import ScriptedLLM, SimulatedLLM, parse_requirement_lists


class TestScriptedLLM:
    def test_replays_in_order(self):
        llm = ScriptedLLM(["a", "b"])
        assert llm.complete([{"role": "user", "content": "x"}]) == "a"
        assert llm.complete([{"role": "user", "content": "y"}]) == "b"

    def test_exhaustion_raises(self):
        llm = ScriptedLLM([])
        with pytest.raises(RuntimeError):
            llm.complete([{"role": "user", "content": "x"}])

    def test_transcript_recorded(self):
        llm = ScriptedLLM(["reply"])
        llm.complete([{"role": "user", "content": "hello"}])
        assert llm.transcript[-1] == {"role": "assistant", "content": "reply"}


def autoformat(text, window=128, recommended="Out"):
    llm = SimulatedLLM()
    reply = llm.complete(
        [
            {
                "role": "user",
                "content": (
                    "TASK: AUTO_FORMAT\n"
                    f"MODEL WINDOW: {window}\n"
                    f"RECOMMENDED_EXTENSION: {recommended}\n"
                    f"USER REQUIREMENT: {text}"
                ),
            }
        ]
    )
    return parse_requirement_lists(reply)


class TestAutoFormatting:
    def test_paper_running_example(self):
        reqs = autoformat(
            "Generate a layout pattern library, there are 100k layout "
            "patterns in total. The physical size fixed as 1.5um * 1.5um. "
            "The topology size should be chosen from 200*200 and 500*500. "
            "They should be in style of 'Layer-10001'."
        )
        assert len(reqs) == 2
        assert sum(r.count for r in reqs) == 100_000
        assert {r.topology_size for r in reqs} == {(200, 200), (500, 500)}
        assert all(r.physical_size == (1500, 1500) for r in reqs)
        assert all(r.style == "Layer-10001" for r in reqs)
        # Both exceed the window -> extension method from the recommendation.
        assert all(r.extension_method == "Out" for r in reqs)

    def test_nm_units(self):
        reqs = autoformat("Make 100 patterns of 2048nm x 2048nm, 128*128 topology.")
        assert reqs[0].physical_size == (2048, 2048)
        assert reqs[0].count == 100
        assert reqs[0].extension_method is None

    def test_count_suffixes(self):
        assert autoformat("make 2k patterns at 128*128")[0].count == 2000
        assert autoformat("make 1.5k patterns at 128*128")[0].count == 1500

    def test_multiple_styles_split(self):
        reqs = autoformat(
            "I need 400 patterns, 128*128, half Layer-10001 and half Layer-10003."
        )
        assert len(reqs) == 2
        assert {r.style for r in reqs} == {"Layer-10001", "Layer-10003"}
        assert sum(r.count for r in reqs) == 400

    def test_inpainting_preference_respected(self):
        reqs = autoformat(
            "Generate 50 patterns with 256*256 topology in Layer-10003 "
            "style using in-painting extension."
        )
        assert reqs[0].extension_method == "In"

    def test_defaults_when_sparse(self):
        reqs = autoformat("a few patterns please")
        assert len(reqs) == 1
        assert reqs[0].count > 0
        assert reqs[0].topology_size == (128, 128)


class TestReActDecisions:
    def respond(self, **fields):
        base = {
            "STYLE": "Layer-10001",
            "SEED": 42,
            "RETRIES REMAINING": 2,
            "DROP ALLOWED": "True",
        }
        base.update(fields)
        content = "TASK: REACT_DECISION\n" + "\n".join(
            f"{k}: {v}" for k, v in base.items()
        )
        return SimulatedLLM().complete([{"role": "user", "content": content}])

    def test_localized_failure_modifies(self):
        reply = self.respond(
            OBSERVATION="legalization FAILED.\nFAILED REGION: (12, 56, 33, 73)"
        )
        assert "Action: Topology_Modification" in reply
        assert '"upper": 12' in reply
        assert '"style": "Layer-10001"' in reply

    def test_unlocalized_failure_regenerates(self):
        reply = self.respond(OBSERVATION="legalization FAILED.\nno region")
        assert "Action: Regenerate" in reply

    def test_exhausted_retries_drop(self):
        reply = self.respond(
            **{"RETRIES REMAINING": 0},
            OBSERVATION="FAILED REGION: (1, 2, 3, 4)",
        )
        assert "Action: Drop" in reply

    def test_no_drop_regenerates_as_last_resort(self):
        reply = self.respond(
            **{"RETRIES REMAINING": 0, "DROP ALLOWED": "False"},
            OBSERVATION="failure",
        )
        assert "Action: Regenerate" in reply

    def test_fallback_prompt(self):
        reply = SimulatedLLM().complete(
            [{"role": "user", "content": "hello there"}]
        )
        assert "layout pattern" in reply.lower()
