"""Unit tests for the agent tool suite and workspace."""

import numpy as np
import pytest

from repro.agent import AgentTools, Workspace
from repro.metrics import physical_size_for


@pytest.fixture()
def tools(small_model):
    return AgentTools(small_model, Workspace(), base_seed=1)


class TestWorkspace:
    def test_put_get(self):
        ws = Workspace()
        t = np.zeros((4, 4), dtype=np.uint8)
        handle = ws.put(t, "Layer-10001")
        assert handle.endswith(".npy")
        assert np.array_equal(ws.get(handle), t)
        assert ws.style_of(handle) == "Layer-10001"

    def test_unknown_handle(self):
        with pytest.raises(KeyError):
            Workspace().get("nope")

    def test_drop_frees(self):
        ws = Workspace()
        handle = ws.put(np.zeros((2, 2), dtype=np.uint8), "Layer-10001")
        ws.drop(handle)
        assert len(ws) == 0

    def test_handles_unique(self):
        ws = Workspace()
        a = ws.put(np.zeros((2, 2), dtype=np.uint8), "Layer-10001")
        b = ws.put(np.zeros((2, 2), dtype=np.uint8), "Layer-10001")
        assert a != b


class TestToolDispatch:
    def test_unknown_tool(self, tools):
        result = tools.call("Teleport")
        assert not result.ok
        assert "unknown tool" in result.message

    def test_call_log_records(self, tools):
        tools.call("Analyze_Library")
        assert tools.call_log[-1][0] == "Analyze_Library"

    def test_documentation_covers_all_tools(self, tools):
        doc = tools.documentation()
        for name in tools.names():
            assert name in doc

    def test_tool_error_returned_not_raised(self, tools):
        result = tools.call("Topology_Modification", topology_path="missing",
                            upper=0, left=0, bottom=1, right=1)
        assert not result.ok
        assert "tool error" in result.message


class TestTopologyGeneration:
    def test_generates_and_stores(self, tools):
        result = tools.call("Topology_Generation", seed=1, style="Layer-10001")
        assert result.ok
        handle = result.data["topology_path"]
        topo = tools.workspace.get(handle)
        assert topo.shape == (64, 64)
        assert "complexity" in result.data

    def test_oversized_request_refused(self, tools):
        result = tools.call(
            "Topology_Generation", seed=1, style="Layer-10001", size=999
        )
        assert not result.ok
        assert "Topology_Extension" in result.message

    def test_seed_determinism(self, small_model):
        a = AgentTools(small_model, Workspace(), base_seed=5)
        b = AgentTools(small_model, Workspace(), base_seed=5)
        ra = a.call("Topology_Generation", seed=3, style="Layer-10003")
        rb = b.call("Topology_Generation", seed=3, style="Layer-10003")
        assert np.array_equal(
            a.workspace.get(ra.data["topology_path"]),
            b.workspace.get(rb.data["topology_path"]),
        )


class TestExtensionTool:
    def test_extends(self, tools):
        gen = tools.call("Topology_Generation", seed=2, style="Layer-10001")
        result = tools.call(
            "Topology_Extension",
            topology_path=gen.data["topology_path"],
            target_size=128,
            method="Out",
            seed=2,
        )
        assert result.ok
        assert tools.workspace.get(result.data["topology_path"]).shape == (128, 128)
        assert result.data["samplings"] >= 1

    def test_bad_method(self, tools):
        gen = tools.call("Topology_Generation", seed=2, style="Layer-10001")
        result = tools.call(
            "Topology_Extension",
            topology_path=gen.data["topology_path"],
            target_size=128,
            method="Diagonal",
        )
        assert not result.ok


class TestLegalizationTool:
    def test_success_adds_to_library(self, tools):
        gen = tools.call("Topology_Generation", seed=3, style="Layer-10001")
        result = tools.call(
            "Legalization",
            topology_path=gen.data["topology_path"],
            physical_size=physical_size_for((64, 64)),
        )
        if result.ok:
            assert len(tools.workspace.library) == 1
        else:
            assert "FAILED" in result.message

    def test_failure_reports_region(self, tools):
        bad = np.zeros((16, 16), dtype=np.uint8)
        bad[2:6, 2:6] = 1
        bad[6:10, 6:10] = 1
        handle = tools.workspace.put(bad, "Layer-10001")
        result = tools.call(
            "Legalization", topology_path=handle, physical_size=(2048, 2048)
        )
        assert not result.ok
        assert "FAILED REGION" in result.message
        assert result.data["failed_region"] is not None


class TestModificationTool:
    def test_modifies_region(self, tools):
        gen = tools.call("Topology_Generation", seed=4, style="Layer-10001")
        handle = gen.data["topology_path"]
        original = tools.workspace.get(handle).copy()
        result = tools.call(
            "Topology_Modification",
            topology_path=handle,
            upper=10, left=10, bottom=30, right=30,
            seed=9,
        )
        assert result.ok
        modified = tools.workspace.get(result.data["topology_path"])
        # Far field preserved.
        assert np.array_equal(modified[40:, 40:], original[40:, 40:])

    def test_region_clamped(self, tools):
        gen = tools.call("Topology_Generation", seed=5, style="Layer-10003")
        result = tools.call(
            "Topology_Modification",
            topology_path=gen.data["topology_path"],
            upper=0, left=0, bottom=9999, right=9999,
            seed=1,
        )
        assert result.ok


class TestAnalyzeTool:
    def test_reports_stats(self, tools):
        result = tools.call("Analyze_Library")
        assert result.ok
        assert result.data["count"] == 0


class TestSaveLibraryTool:
    def _tools_with_store(self, small_model, tmp_path):
        from repro.serve import LibraryStore

        store = LibraryStore(tmp_path)
        return AgentTools(small_model, Workspace(), base_seed=1, store=store), store

    def test_without_store_fails_cleanly(self, tools):
        result = tools.call("Save_Library")
        assert not result.ok
        assert "no pattern store" in result.message

    def test_empty_library_refused(self, small_model, tmp_path):
        tools, _ = self._tools_with_store(small_model, tmp_path)
        result = tools.call("Save_Library")
        assert not result.ok
        assert "empty" in result.message

    def test_persists_and_dedupes(self, small_model, tmp_path):
        tools, store = self._tools_with_store(small_model, tmp_path)
        generated = tools.call("Topology_Generation", seed=5, style="Layer-10001")
        legalized = tools.call(
            "Legalization",
            topology_path=generated.data["topology_path"],
            physical_size=physical_size_for((64, 64)),
        )
        if not legalized.ok:  # guaranteed-legal fallback for a small model
            tools.call(
                "Topology_Selection",
                seed=6,
                style="Layer-10001",
                count=1,
            )
        assert len(tools.workspace.library) >= 1

        first = tools.call("Save_Library")
        assert first.ok
        assert first.data["added"] == len(tools.workspace.library)
        assert store.stats()["legal"] == first.data["added"]

        second = tools.call("Save_Library")
        assert second.ok
        assert second.data["added"] == 0
        assert second.data["deduplicated"] == len(tools.workspace.library)

    def test_analyze_reports_store_stats(self, small_model, tmp_path):
        tools, _ = self._tools_with_store(small_model, tmp_path)
        result = tools.call("Analyze_Library")
        assert result.ok
        assert result.data["store"]["unique"] == 0
        assert "persistent store" in result.message
