"""Unit tests for the Time Limitation advanced requirement."""

from repro.agent import (
    AgentTools,
    RequirementList,
    SimulatedLLM,
    TaskExecutor,
    Workspace,
)
from repro.metrics import physical_size_for


class TestTimeLimit:
    def test_zero_budget_stops_immediately(self, small_model):
        tools = AgentTools(small_model, Workspace(), base_seed=4)
        executor = TaskExecutor(tools, SimulatedLLM())
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=physical_size_for((64, 64)),
            style="Layer-10001",
            count=5,
            time_limit=0.0,
            seed=1,
        )
        report = executor.execute(req)
        assert report.timed_out
        assert report.produced == 0
        assert any(e.kind == "timed_out" for e in executor.history.events)

    def test_generous_budget_completes(self, small_model):
        tools = AgentTools(small_model, Workspace(), base_seed=4)
        executor = TaskExecutor(tools, SimulatedLLM())
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=physical_size_for((64, 64)),
            style="Layer-10001",
            count=2,
            time_limit=300.0,
            seed=1,
        )
        report = executor.execute(req)
        assert not report.timed_out
        assert report.produced + report.dropped == 2
