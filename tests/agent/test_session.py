"""Unit tests for multi-turn chat sessions."""

import pytest

from repro.agent import ChatSession
from repro.core import ChatPattern


@pytest.fixture(scope="module")
def session(small_model):
    return ChatSession(chat=ChatPattern(model=small_model, max_retries=0))


class TestFollowUpDetection:
    @pytest.mark.parametrize(
        "text",
        [
            "give me 3 more",
            "another batch please",
            "same as before but in Layer-10003",
            "2 additional patterns",
        ],
    )
    def test_detects_follow_up(self, text):
        assert ChatSession.is_follow_up(text)

    @pytest.mark.parametrize(
        "text",
        [
            "Generate 5 patterns at 64*64 in Layer-10001",
            "hello",
        ],
    )
    def test_standalone_not_follow_up(self, text):
        assert not ChatSession.is_follow_up(text)


class TestSessionFlow:
    def test_accumulates_library(self, session):
        first = session.request(
            "Generate 2 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001."
        )
        total_after_first = len(session.library)
        assert total_after_first == first.produced

        second = session.request("2 more patterns please")
        assert len(session.turns) == 2
        assert len(session.library) == total_after_first + second.produced
        # Follow-up inherited topology size and style from turn 1.
        req = second.plan.requirements[0]
        assert req.topology_size == (64, 64)
        assert req.style == "Layer-10001"

    def test_follow_up_style_override(self, session):
        session.request(
            "Generate 1 layout patterns, 64*64 topology, physical size "
            "1024nm * 1024nm, style Layer-10001."
        )
        result = session.request("same as before but in Layer-10003")
        assert result.plan.requirements[0].style == "Layer-10003"

    def test_summary(self, session):
        text = session.summary()
        assert "turn" in text
        assert "accumulated" in text
