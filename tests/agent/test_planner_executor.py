"""Unit tests for task planning, ReAct parsing and the executor loop."""

import numpy as np
import pytest

from repro.agent import (
    AgentTools,
    ExperienceDocuments,
    ExtensionRecord,
    RequirementList,
    ScriptedLLM,
    SimulatedLLM,
    TaskExecutor,
    TaskPlanner,
    Workspace,
    parse_react,
)
from repro.metrics import physical_size_for


class TestParseReact:
    def test_json_input(self):
        step = parse_react(
            "Thought: fix it\nAction: Topology_Modification\n"
            'Action Input: {"upper": 1, "left": 2, "bottom": 3, "right": 4}'
        )
        assert step.action == "Topology_Modification"
        assert step.action_input == {"upper": 1, "left": 2, "bottom": 3, "right": 4}
        assert step.thought == "fix it"

    def test_loose_paper_syntax(self):
        # The exact Action Input syntax printed in the paper (Sec. 4.2).
        step = parse_react(
            "Thought: retry\nAction: Topology_Modification\n"
            'Action Input: "topology_path":${path}, "upper": 12, "left": 56, '
            '"bottom": 33, "right": 73, "style": "Layer-10001", "seed": 42'
        )
        assert step.action_input["upper"] == 12
        assert step.action_input["style"] == "Layer-10001"
        assert step.action_input["seed"] == 42

    def test_empty_input(self):
        step = parse_react("Thought: done\nAction: Drop\nAction Input: {}")
        assert step.action == "Drop"
        assert step.action_input == {}

    def test_missing_action_raises(self):
        with pytest.raises(ValueError):
            parse_react("Thought: hmm, not sure")


class TestPlanner:
    def test_auto_format_produces_plan(self):
        planner = TaskPlanner(SimulatedLLM(), window=128)
        plan = planner.auto_format(
            "Generate 20 patterns at 128*128 in style Layer-10001, "
            "physical size 2048nm * 2048nm."
        )
        assert plan.total_count == 20
        assert plan.requirements[0].style == "Layer-10001"
        assert plan.requirements[0].seed != 0

    def test_extension_defaults_from_documents(self):
        docs = ExperienceDocuments()
        docs.record_extension(
            ExtensionRecord("Layer-10001", "In", 256, legality=0.9, diversity=11.0)
        )
        docs.record_extension(
            ExtensionRecord("Layer-10001", "Out", 256, legality=0.7, diversity=10.0)
        )
        planner = TaskPlanner(SimulatedLLM(), documents=docs, window=128)
        plan = planner.auto_format(
            "Generate 10 patterns at 256*256 in style Layer-10001 with "
            "physical size 4096nm * 4096nm."
        )
        # The simulated LLM already fills a method from the prompt
        # recommendation; documents decide that recommendation.
        assert plan.requirements[0].extension_method in ("In", "Out")

    def test_scripted_backend_round_trip(self):
        reply = RequirementList(
            topology_size=(64, 64),
            physical_size=(1024, 1024),
            style="Layer-10003",
            count=3,
        ).to_text()
        planner = TaskPlanner(ScriptedLLM([reply]), window=64)
        plan = planner.auto_format("whatever")
        assert plan.requirements[0].style == "Layer-10003"
        assert plan.requirements[0].count == 3


class TestDocuments:
    def test_recommendation_defaults(self):
        docs = ExperienceDocuments()
        assert docs.recommend_extension("Layer-10001", objective="legality") == "Out"
        assert docs.recommend_extension("Layer-10001", objective="diversity") == "In"

    def test_recommendation_from_records(self):
        docs = ExperienceDocuments()
        docs.record_extension(ExtensionRecord("L", "In", 256, 0.95, 12.0))
        docs.record_extension(ExtensionRecord("L", "Out", 256, 0.80, 10.0))
        assert docs.recommend_extension("L", objective="legality") == "In"

    def test_size_filter(self):
        docs = ExperienceDocuments()
        docs.record_extension(ExtensionRecord("L", "In", 256, 0.9, 12.0))
        docs.record_extension(ExtensionRecord("L", "Out", 512, 0.95, 10.0))
        assert docs.recommend_extension("L", size=512, objective="legality") == "Out"

    def test_bad_objective(self):
        with pytest.raises(ValueError):
            ExperienceDocuments().recommend_extension("L", objective="speed")

    def test_save_load_round_trip(self, tmp_path):
        docs = ExperienceDocuments()
        docs.record_extension(ExtensionRecord("L", "In", 256, 0.9, 12.0))
        docs.add_note("out-painting is faster")
        path = docs.save(tmp_path / "docs.json")
        loaded = ExperienceDocuments.load(path)
        assert loaded.records[0].style == "L"
        assert loaded.notes == ["out-painting is faster"]

    def test_summary_text(self):
        docs = ExperienceDocuments()
        assert "out-painting" in docs.summary_text().lower()
        docs.record_extension(ExtensionRecord("L", "In", 256, 0.9, 12.0))
        assert "measured" in docs.summary_text()


class TestExecutor:
    def _executor(self, model, backend=None, max_retries=2):
        tools = AgentTools(model, Workspace(), base_seed=3)
        return TaskExecutor(tools, backend or SimulatedLLM(), max_retries=max_retries)

    def test_produces_requested_count(self, small_model):
        executor = self._executor(small_model)
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=physical_size_for((64, 64)),
            style="Layer-10001",
            count=3,
            seed=11,
        )
        report = executor.execute(req)
        assert report.produced + report.dropped == 3
        assert report.produced == len(executor.tools.workspace.library)
        assert report.elapsed_seconds > 0
        assert "subtask" in report.summary()

    def test_history_recorded(self, small_model):
        executor = self._executor(small_model)
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=physical_size_for((64, 64)),
            style="Layer-10003",
            count=2,
            seed=5,
        )
        executor.execute(req)
        kinds = {e.kind for e in executor.history.events}
        assert "generated" in kinds

    def test_impossible_budget_drops_all(self, small_model):
        """With a physical budget below 1 nm/cell everything must fail and,
        with drop allowed, be dropped after the retry budget."""
        executor = self._executor(small_model, max_retries=1)
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=(32, 32),
            style="Layer-10001",
            count=2,
            seed=1,
        )
        report = executor.execute(req)
        assert report.produced == 0
        assert report.dropped == 2
        assert report.decisions  # the LLM was consulted

    def test_scripted_decision_path(self, small_model):
        """Force a Drop decision from a scripted LLM on first failure."""
        backend = ScriptedLLM(
            ["Thought: give up\nAction: Drop\nAction Input: {}"] * 2
        )
        executor = self._executor(small_model, backend=backend)
        req = RequirementList(
            topology_size=(64, 64),
            physical_size=(32, 32),
            style="Layer-10001",
            count=2,
            seed=1,
        )
        report = executor.execute(req)
        assert report.dropped == 2
        assert report.modifications == 0
