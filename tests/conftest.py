"""Shared fixtures: small trained models and datasets, built once per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DatasetConfig, STYLES, build_library, build_training_set
from repro.diffusion import ConditionalDiffusionModel, DiffusionSchedule


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """(topologies, conditions) at 64x64 resolution — fast to train on."""
    cfg = DatasetConfig(tile_nm=1024, topology_size=64, map_scale=8, seed=7)
    return build_training_set(list(STYLES), 24, cfg)


@pytest.fixture(scope="session")
def small_model(small_dataset):
    """Conditional diffusion model trained at window=64 (seconds)."""
    topologies, conditions = small_dataset
    model = ConditionalDiffusionModel(
        schedule=DiffusionSchedule.linear(64, 0.003, 0.08),
        window=64,
        n_classes=2,
    )
    model.fit(topologies, conditions, np.random.default_rng(0))
    return model


@pytest.fixture(scope="session")
def tiny_library():
    """Eight real 64x64 tiles of Layer-10001."""
    cfg = DatasetConfig(tile_nm=1024, topology_size=64, map_scale=8, seed=11)
    return build_library("Layer-10001", 8, cfg)
