"""Crash-safety matrix for the LibraryStore's journal + index pipeline.

Each test kills the store (via ``SimulatedCrash`` at a named kill point,
which leaves exactly the disk state a real SIGKILL there would) and then
reopens a fresh instance over the same directory, asserting the durability
contract:

- an **acked** ``add`` (the call returned) is always recovered;
- an **un-acked** add is either fully present or fully absent — the store
  reopens clean either way, never corrupted.
"""

import json

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultPoint, SimulatedCrash, injected
from repro.serve import LibraryStore, pattern_content_hash
from repro.squish import SquishPattern

#: Every kill point along the add()/flush() write path, in write order.
KILL_SITES = (
    "store.object_write",
    "store.journal_append",
    "store.journal_sync",
    "store.flush_tmp",
    "store.flush_publish",
    "store.flush_compact",
)

#: Kill points at which the interrupted add is guaranteed durable: the
#: journal line was written (append) — fsync or not, the bytes reach the
#: file on a simulated crash — so replay recovers it.
DURABLE_AFTER = {
    "store.journal_append",
    "store.journal_sync",
    "store.flush_tmp",
    "store.flush_publish",
    "store.flush_compact",
}


@pytest.fixture(autouse=True)
def clean_active_plan():
    faults.reset()
    yield
    faults.reset()


def _pattern(fill_row=0, style="Layer-10001", size=4):
    topology = np.zeros((size, size), dtype=np.uint8)
    topology[fill_row % size] = 1
    return SquishPattern(
        topology=topology,
        dx=np.full(size, 10),
        dy=np.full(size, 10),
        style=style,
    )


def _crash_plan(site, nth=1):
    return FaultPlan([FaultPoint(site=site, nth=nth, times=1, crash=True)])


class TestKillPointMatrix:
    @pytest.mark.parametrize("site", KILL_SITES)
    def test_acked_adds_survive_a_crash_at(self, site, tmp_path):
        store = LibraryStore(tmp_path)
        acked = []
        for row in range(3):  # acked before the fault plan goes live
            content_hash, was_new = store.add(_pattern(fill_row=row))
            assert was_new
            acked.append(content_hash)
        victim = _pattern(fill_row=3)
        with injected(_crash_plan(site)):
            with pytest.raises(SimulatedCrash):
                store.add(victim)
        # The crashed process is gone; a fresh instance reopens the dir.
        reopened = LibraryStore(tmp_path)
        for content_hash in acked:
            assert reopened.record(content_hash) is not None
            assert reopened.get(content_hash) is not None
        victim_hash = pattern_content_hash(victim)
        try:
            reopened.record(victim_hash)
            recovered = True
        except KeyError:
            recovered = False
        if recovered:
            # A recovered un-acked add must be *fully* present: its
            # object file loads, not just its index row.
            assert reopened.get(victim_hash) == victim
        if site in DURABLE_AFTER:
            assert recovered

    @pytest.mark.parametrize("site", KILL_SITES)
    def test_reopened_store_keeps_serving_writes(self, site, tmp_path):
        store = LibraryStore(tmp_path)
        store.add(_pattern(fill_row=0))
        with injected(_crash_plan(site)):
            with pytest.raises(SimulatedCrash):
                store.add(_pattern(fill_row=1))
        reopened = LibraryStore(tmp_path)
        content_hash, _ = reopened.add(_pattern(fill_row=2))
        assert reopened.record(content_hash) is not None
        third = LibraryStore(tmp_path)  # and the new write is durable too
        assert third.record(content_hash) is not None


class TestJournalReplay:
    def test_journal_only_state_replays(self, tmp_path):
        # Kill between the journal fsync and the in-memory mutate: the add
        # exists ONLY in the journal.  Boot must replay it into the index.
        store = LibraryStore(tmp_path)
        victim = _pattern(fill_row=1)
        with injected(_crash_plan("store.journal_sync")):
            with pytest.raises(SimulatedCrash):
                store.add(victim)
        reopened = LibraryStore(tmp_path)
        assert reopened.journal_replayed >= 1
        assert reopened.get(pattern_content_hash(victim)) == victim

    def test_replayed_duplicates_restore_counters(self, tmp_path):
        store = LibraryStore(tmp_path)
        store.add(_pattern(fill_row=0))
        # Crash during the *flush* of a duplicate add: the dup journal
        # line is durable but the index still shows zero duplicates.
        with injected(_crash_plan("store.flush_tmp")):
            with pytest.raises(SimulatedCrash):
                store.add(_pattern(fill_row=0), legal=True)
        reopened = LibraryStore(tmp_path)
        assert reopened.stats()["duplicates"] == 1
        # The dup's legality verdict was replayed as an upgrade too.
        record = reopened.record(pattern_content_hash(_pattern(fill_row=0)))
        assert record.legal is True

    def test_torn_trailing_journal_line_is_tolerated(self, tmp_path):
        store = LibraryStore(tmp_path)
        with injected(_crash_plan("store.journal_sync")):
            with pytest.raises(SimulatedCrash):
                store.add(_pattern(fill_row=1))
        # A torn write: garbage trailing bytes after the good line.
        with open(store.journal_path, "a") as handle:
            handle.write('{"seq": 99, "op": "ad')
        reopened = LibraryStore(tmp_path)
        assert len(reopened) == 1  # good prefix replayed, tail dropped

    def test_flush_compacts_the_journal(self, tmp_path):
        store = LibraryStore(tmp_path)
        store.add(_pattern(fill_row=0))
        store.add(_pattern(fill_row=1))
        # A clean flush publishes the index and truncates the journal.
        assert store.journal_path.read_text() == ""
        payload = json.loads(store.index_path.read_text())
        assert payload["journal_seq"] >= 2

    def test_replay_skips_entries_older_than_index(self, tmp_path):
        # Crash after publish but before compaction: the journal still
        # holds entries the published index already covers.  Boot must
        # not double-apply them.
        store = LibraryStore(tmp_path)
        with injected(_crash_plan("store.flush_publish")):
            with pytest.raises(SimulatedCrash):
                store.add(_pattern(fill_row=0))
        assert store.journal_path.read_text() != ""
        reopened = LibraryStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.stats()["duplicates"] == 0
        assert reopened.journal_replayed == 0

    def test_object_write_crash_leaves_no_trace(self, tmp_path):
        # Killed before the object file was written: nothing was acked,
        # nothing was journaled — the store reopens empty.
        store = LibraryStore(tmp_path)
        with injected(_crash_plan("store.object_write")):
            with pytest.raises(SimulatedCrash):
                store.add(_pattern(fill_row=0))
        reopened = LibraryStore(tmp_path)
        assert len(reopened) == 0
        assert reopened.journal_replayed == 0
