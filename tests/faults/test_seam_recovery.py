"""Fault seams in the registry and shared-memory transport heal correctly."""

import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultInjected, FaultPlan, FaultPoint, injected
from repro.serve import ModelKey, ModelRegistry
from repro.serve.shm import (
    SHM_PREFIX,
    ShmArena,
    attach_ref,
    leaked_segments,
    sweep_stale_segments,
    write_into,
)


@pytest.fixture(autouse=True)
def clean_active_plan():
    faults.reset()
    yield
    faults.reset()


class _StubModel:
    fitted = True
    window = 8
    denoiser = None


def _stub_builder(key):
    return _StubModel()


class TestRegistryHealing:
    def test_torn_disk_read_heals_via_bounded_retry(self, tmp_path):
        """One injected read failure follows the transient-corruption
        path: the bounded retry re-reads and serves the disk hit."""
        writer = ModelRegistry(builder=_stub_builder, save_dir=tmp_path)
        key = ModelKey(window=8)
        writer.get_or_fit(key)  # publish the cache entry
        reader = ModelRegistry(builder=_stub_builder, save_dir=tmp_path)
        with injected(
            FaultPlan([FaultPoint(site="registry.disk_read", nth=1, times=1)])
        ):
            model, origin = reader.resolve(key)
        assert model is not None
        assert origin == "disk"  # healed: retried the read, no refit

    def test_persistent_read_failure_degrades_to_refit(self, tmp_path):
        writer = ModelRegistry(builder=_stub_builder, save_dir=tmp_path)
        key = ModelKey(window=8)
        writer.get_or_fit(key)
        reader = ModelRegistry(builder=_stub_builder, save_dir=tmp_path)
        # Every read attempt fails: the registry must refit, never crash.
        with injected(FaultPlan([FaultPoint(site="registry.disk_read")])):
            model, origin = reader.resolve(key)
        assert model is not None
        assert origin == "fit"

    def test_disk_write_failure_is_absorbed(self, tmp_path):
        registry = ModelRegistry(builder=_stub_builder, save_dir=tmp_path)
        key = ModelKey(window=8)
        with injected(FaultPlan([FaultPoint(site="registry.disk_write")])):
            model, origin = registry.resolve(key)
        assert model is not None and origin == "fit"
        # The failed save left no cache entry and no tmp litter.
        assert not registry.cache_path(key).exists()
        assert list(Path(tmp_path).glob("*.tmp")) == []


class TestShmSeams:
    def test_attach_fault_raises_cleanly(self):
        with ShmArena() as arena:
            ref = arena.allocate((2, 2))
            with injected(FaultPlan([FaultPoint(site="shm.attach")])):
                with pytest.raises(FaultInjected):
                    attach_ref(ref)
        assert leaked_segments() == []

    def test_write_fault_does_not_leak_the_attach(self):
        with ShmArena() as arena:
            ref = arena.allocate((2, 2))
            with injected(FaultPlan([FaultPoint(site="shm.write")])):
                with pytest.raises(FaultInjected):
                    write_into(ref, np.zeros((2, 2), dtype=np.uint8))
        # write_into's finally closed the attach; close() unlinked.
        assert leaked_segments() == []

    def test_allocate_fault_surfaces_before_creation(self):
        arena = ShmArena()
        with injected(FaultPlan([FaultPoint(site="shm.allocate")])):
            with pytest.raises(FaultInjected):
                arena.allocate((4, 4))
        assert arena.active == 0
        assert leaked_segments() == []


@pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="no /dev/shm on this platform"
)
class TestStaleSweep:
    def _dead_pid(self):
        """A pid that is guaranteed dead (a reaped child of ours)."""
        proc = multiprocessing.get_context("spawn").Process(target=int)
        proc.start()
        pid = proc.pid
        proc.join()
        proc.close()
        return pid

    def test_dead_owner_segment_is_swept(self):
        name = f"{SHM_PREFIX}_{self._dead_pid()}_1_deadbeef"
        path = Path("/dev/shm") / name
        path.write_bytes(b"\0" * 64)
        try:
            assert name in sweep_stale_segments()
            assert not path.exists()
        finally:
            path.unlink(missing_ok=True)

    def test_live_owner_segment_is_kept(self):
        name = f"{SHM_PREFIX}_{os.getpid()}_1_cafebabe"
        path = Path("/dev/shm") / name
        path.write_bytes(b"\0" * 64)
        try:
            assert name not in sweep_stale_segments()
            assert path.exists()
        finally:
            path.unlink(missing_ok=True)

    def test_malformed_names_are_left_alone(self):
        name = f"{SHM_PREFIX}_notapid_zzz"
        path = Path("/dev/shm") / name
        path.write_bytes(b"\0" * 8)
        try:
            assert name not in sweep_stale_segments()
            assert path.exists()
        finally:
            path.unlink(missing_ok=True)
