"""Full-stack chaos scenarios: seeded fault plans against a live stack.

The acceptance bar of the fault-injection harness, asserted end to end:

- **no request is lost silently** — every submitted job reaches a terminal
  state, even when responses are dropped on the floor mid-flight;
- **no data is corrupted** — stores and job journals reopen clean;
- **the engine keeps serving** — a crash consumes one batch (at most),
  never the service.
"""

import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.api.config import FaultConfig, PipelineConfig
from repro.faults import FaultPlan, FaultPoint, injected
from repro.serve import (
    ModelKey,
    ModelRegistry,
    PatternHttpServer,
    PatternService,
    ServeClient,
    ServeClientError,
    ServeEngine,
    ServeRequest,
    WorkerCrashedError,
    leaked_segments,
)
from repro.serve.jobs import TERMINAL_STATES

TINY_KEY = ModelKey(window=64, train_count=4)
PARAMS = {"count": 2, "style": "Layer-10001"}


@pytest.fixture(autouse=True)
def clean_active_plan():
    faults.reset()
    yield
    faults.reset()


class StubModel:
    """Instant fake sampler producing legal 16x16 patterns."""

    def __init__(self, window=16):
        self.window = window
        self.fitted = True
        self.n_classes = 2
        self.supports_sampler_steps = True

    def sample_batch(self, conditions, rng, shape=None, **kwargs):
        shape = shape or (self.window, self.window)
        out = np.zeros((len(conditions), *shape), dtype=np.uint8)
        out[:, 4:12, 4:12] = 1
        return out


@pytest.fixture(scope="module")
def disk_registry(tmp_path_factory):
    cache = tmp_path_factory.mktemp("chaos-model-cache")
    registry = ModelRegistry(save_dir=cache)
    registry.get_or_fit(TINY_KEY)
    return registry


def _live_server(**service_kwargs):
    service = PatternService(
        model=StubModel(), max_workers=2, gather_window=0.0, **service_kwargs
    )
    server = PatternHttpServer(service, port=0)
    server.start()
    return server


class TestEngineChaos:
    def test_thread_tier_fault_fails_one_batch_not_the_engine(self):
        model = StubModel()
        engine = ServeEngine(engine_workers=1, gather_window=0.0)
        client = engine.bind(model, label="stub")
        plan = FaultPlan(
            [FaultPoint(site="engine.execute", nth=1, times=1)]
        )
        with injected(plan), engine:
            doomed = client.submit(count=1, condition=0, seed=1)
            with pytest.raises(Exception, match="injected fault"):
                doomed.result(timeout=30)
            healthy = client.submit(count=1, condition=0, seed=2)
            assert healthy.result(timeout=30).shape == (1, 16, 16)
        assert plan.injected_total() == 1

    def test_config_enabled_plan_installs_through_the_service(self):
        cfg = PipelineConfig().replace(
            faults=FaultConfig.from_dict(
                {"enabled": True, "seed": 3,
                 "points": [{"site": "engine.execute", "nth": 1,
                             "times": 1}]}
            )
        )
        service = PatternService(model=StubModel(), config=cfg)
        try:
            active = faults.active_plan()
            assert active.enabled
            assert active.points[0].site == "engine.execute"
            with service:
                responses = service.serve(
                    [ServeRequest(text="Generate 2 legal patterns, 16*16 "
                                       "topology, physical size 1024nm * "
                                       "1024nm, style Layer-10001.")]
                )
            # The injected batch failure was retried by the agent
            # pipeline or surfaced as a clean failure — never a hang.
            assert responses[0].error is None or responses[0].error_code
        finally:
            faults.reset()


class TestProcessTierChaos:
    def test_seeded_kill_crashes_once_retry_succeeds(self, disk_registry):
        """worker.execute:kill:nth=2 — the second dispatched batch kills
        its worker; the respawned child (counter primed past the rule)
        executes the retry instead of crash-looping."""
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1,
            gather_window=0.0,
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        client = engine.bind(model, label="tiny", key=TINY_KEY)
        plan = FaultPlan(
            [FaultPoint(site="worker.execute", mode="kill", nth=2, times=1)]
        )
        with injected(plan), engine:
            first = client.submit(count=1, condition=0, seed=1)
            assert first.result(timeout=240).shape == (1, 64, 64)
            second = client.submit(count=1, condition=0, seed=2)
            # Crashed once, was retried on a fresh worker, delivered.
            assert second.result(timeout=240).shape == (1, 64, 64)
            third = client.submit(count=1, condition=1, seed=3)
            assert third.result(timeout=240).shape == (1, 64, 64)
        assert leaked_segments() == []

    def test_dispatch_fault_burns_the_retry_then_fails_terminal(
        self, disk_registry
    ):
        """Two parent-side dispatch faults on one batch exhaust the
        retry-once budget: the jobs fail with worker_crashed while the
        engine survives to serve the next batch."""
        engine = ServeEngine(
            registry=disk_registry, executor="process", engine_workers=1,
            gather_window=0.0,
        )
        model = disk_registry.get_or_fit(TINY_KEY)
        client = engine.bind(model, label="tiny", key=TINY_KEY)
        plan = FaultPlan(
            [FaultPoint(site="engine.dispatch", nth=1, times=1),
             FaultPoint(site="engine.dispatch", nth=2, times=1)]
        )
        with injected(plan), engine:
            doomed = client.submit(count=1, condition=0, seed=1)
            with pytest.raises(WorkerCrashedError):
                doomed.result(timeout=240)
            healthy = client.submit(count=1, condition=0, seed=2)
            assert healthy.result(timeout=240).shape == (1, 64, 64)
        assert leaked_segments() == []

    def test_cancel_races_the_crash_retry(self, disk_registry):
        """Cancel a service job while its crashed batch is being retried:
        the job must reach a terminal state (CANCELLED if the checkpoint
        saw the flag, else SUCCEEDED) and the service keeps serving."""
        service = PatternService(
            model=disk_registry.get_or_fit(TINY_KEY),
            model_key=TINY_KEY,
            registry=disk_registry,
            executor="process",
            engine_workers=1,
            gather_window=0.0,
            max_retries=0,
        )
        plan = FaultPlan([
            FaultPoint(site="worker.execute", mode="kill", nth=1, times=1),
            FaultPoint(site="worker.execute", mode="latency", nth=2,
                       delay=0.5),
        ])
        request = ServeRequest(
            text="Generate 2 legal patterns, 64*64 topology, physical "
                 "size 1024nm * 1024nm, style Layer-10001.",
        )
        with injected(plan), service:
            job = service.submit_job(request)
            # Let the first dispatch crash, then cancel mid-retry.
            time.sleep(0.3)
            service.cancel_job(job.job_id)
            assert job.wait(timeout=240)
            assert job.state in TERMINAL_STATES
            follow_up = service.submit_job(request)
            assert follow_up.wait(timeout=240)
            assert follow_up.state in TERMINAL_STATES
        assert leaked_segments() == []


class TestHttpChaos:
    def test_dropped_response_plus_idempotent_retry_runs_once(self):
        """http.respond kills the submit's response on the wire; the
        client's transport retry re-POSTs the same client key and lands
        on the job already created — exactly one job, no silent loss."""
        server = _live_server()
        try:
            client = ServeClient(
                server.url, retries=3, backoff_base=0.01, backoff_cap=0.05
            )
            plan = FaultPlan(
                [FaultPoint(site="http.respond", nth=1, times=1)]
            )
            with injected(plan):
                job_id = client.submit(kind="pipeline", params=PARAMS)
            assert client.retries_performed >= 1
            final = client.wait(job_id, timeout=120)
            assert final["state"] in TERMINAL_STATES
            assert len(server.service.jobs) == 1  # ran once, not twice
        finally:
            server.stop()

    def test_accept_faults_shed_connections_not_the_server(self):
        server = _live_server()
        try:
            client = ServeClient(
                server.url, retries=5, backoff_base=0.01, backoff_cap=0.05
            )
            plan = FaultPlan(
                [FaultPoint(site="http.accept", nth=1, times=1)]
            )
            with injected(plan):
                job_id = client.submit(kind="pipeline", params=PARAMS)
            final = client.wait(job_id, timeout=120)
            assert final["state"] in TERMINAL_STATES
        finally:
            server.stop()

    def test_draining_server_answers_503_with_retry_after(self):
        server = _live_server()
        try:
            # Flip the drain gate without stopping the loop: exactly the
            # window a client sees during graceful shutdown.
            server._draining.set()
            client = ServeClient(server.url)
            with pytest.raises(ServeClientError) as excinfo:
                client.submit(kind="pipeline", params=PARAMS)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "shutdown"
            assert excinfo.value.retry_after is not None
            server._draining.clear()
            # The gate was temporary: the server still serves.
            job_id = client.submit(kind="pipeline", params=PARAMS)
            assert client.wait(job_id, timeout=120)["state"] in TERMINAL_STATES
        finally:
            server.stop()

    def test_drain_under_load_finishes_admitted_jobs(self):
        server = _live_server()
        stopper = None
        try:
            client = ServeClient(server.url)
            job_ids = [
                client.submit(kind="pipeline", params=PARAMS)
                for _ in range(4)
            ]
            stopper = threading.Thread(
                target=server.stop, kwargs={"drain": True}
            )
            stopper.start()
            stopper.join(timeout=120)
            assert not stopper.is_alive()
            # Every admitted job reached a terminal state before the
            # loop went down — none were abandoned mid-flight.
            for job_id in job_ids:
                job = server.service.jobs.get(job_id)
                assert job is not None
                assert job.state in TERMINAL_STATES
        finally:
            if stopper is None or not stopper.is_alive():
                server.stop()


class TestDurableServiceAcrossRestart:
    def test_terminal_jobs_survive_a_service_reboot(self, tmp_path):
        cfg = PipelineConfig()
        cfg = cfg.replace(serve=cfg.serve.replace(state_dir=str(tmp_path)))
        service = PatternService(model=StubModel(), config=cfg)
        with service:
            request = ServeRequest(
                text="Generate 2 legal patterns, 16*16 topology, physical "
                     "size 1024nm * 1024nm, style Layer-10001.",
                client_job_id="ck-durable",
            )
            job = service.submit_job(request)
            job.wait(timeout=120)
            job_id, state = job.job_id, job.state
        assert state in TERMINAL_STATES
        reborn = PatternService(model=StubModel(), config=cfg)
        restored = reborn.jobs.get(job_id)
        assert restored is not None
        assert restored.state == state
        assert restored.as_dict()["restored"] is True
        # And the idempotency key still routes to the restored job.
        assert reborn.jobs.find_client("ck-durable").job_id == job_id
        reborn.jobs.close()
