"""Restart recovery + retention races for the durable JobTable.

Covers the crash contract of ``--state-dir``: terminal jobs are pollable
across a restart with their full outcome, in-flight jobs resurface as
FAILED ``server_restart`` (never silently vanish), and the TTL reaper can
race status/cancel lookups without corrupting the table.
"""

import threading
import time

import pytest

from repro.serve import CODE_SERVER_RESTART, JobTable
from repro.serve.jobs import (
    CODE_LEGALIZE_FAILED,
    FAILED,
    QUEUED,
    RUNNING,
    SUCCEEDED,
)


def _restart(state_dir, **kwargs):
    """A fresh JobTable over the same state dir — 'the process rebooted'."""
    return JobTable(state_dir=state_dir, **kwargs)


class TestTerminalRehydration:
    def test_succeeded_job_pollable_after_restart(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create()
        job.transition(QUEUED)
        job.transition(RUNNING)
        job.succeed()
        rebooted = _restart(tmp_path)
        assert rebooted.restored == 1
        restored = rebooted.get(job.job_id)
        assert restored is not None
        assert restored.state == SUCCEEDED
        assert restored.restored is True
        assert restored.wait(timeout=0)  # terminal: waiters release

    def test_failed_job_keeps_error_and_code(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create()
        job.transition(QUEUED)
        job.fail("legalization produced nothing", code=CODE_LEGALIZE_FAILED)
        restored = _restart(tmp_path).get(job.job_id)
        assert restored.state == FAILED
        assert restored.error_code == CODE_LEGALIZE_FAILED
        assert "legalization" in restored.error

    def test_restored_view_is_the_journaled_snapshot(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create()
        job.transition(QUEUED)
        job.succeed(produced=0)
        # persist() re-journals with later-arriving response data;
        # last record wins at replay.
        job._restored_view = None  # (not restored; just exercising persist)
        payload = job.as_dict()
        payload["produced"] = 7
        table.state_store._append({"op": "terminal", "record": payload})
        restored = _restart(tmp_path).get(job.job_id)
        assert restored.produced == 7
        assert restored.as_dict()["produced"] == 7

    def test_client_key_survives_restart(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create(client_id="ck-abc")
        job.transition(QUEUED)
        job.succeed()
        rebooted = _restart(tmp_path)
        found = rebooted.find_client("ck-abc")
        assert found is not None and found.job_id == job.job_id


class TestOrphanResurrection:
    def test_in_flight_job_resurfaces_as_server_restart(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create()
        job.transition(QUEUED)
        job.transition(RUNNING)  # crash happens here: never terminal
        rebooted = _restart(tmp_path)
        assert rebooted.resurrected == 1
        orphan = rebooted.get(job.job_id)
        assert orphan.state == FAILED
        assert orphan.error_code == CODE_SERVER_RESTART
        assert "restart" in orphan.error

    def test_resurrection_is_durable_across_a_second_restart(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        job = table.create()
        job.transition(QUEUED)
        first_reboot = _restart(tmp_path)
        assert first_reboot.get(job.job_id).error_code == CODE_SERVER_RESTART
        second_reboot = _restart(tmp_path)
        # Compaction journaled the orphan's terminal record: it restores
        # as a plain terminal now, not a fresh resurrection.
        assert second_reboot.resurrected == 0
        assert (
            second_reboot.get(job.job_id).error_code == CODE_SERVER_RESTART
        )

    def test_new_ids_never_collide_with_restored_ones(self, tmp_path):
        table = JobTable(state_dir=tmp_path)
        old = [table.create() for _ in range(3)]
        for job in old:
            job.transition(QUEUED)
            job.succeed()
        rebooted = _restart(tmp_path)
        fresh = rebooted.create()
        assert fresh.job_id not in {job.job_id for job in old}
        # Serial numbering continues past the restored high-water mark.
        assert int(fresh.job_id.split("-")[1]) == 4

    def test_ttl_window_restarts_at_boot(self, tmp_path):
        table = JobTable(state_dir=tmp_path, ttl=600.0)
        job = table.create()
        job.transition(QUEUED)
        job.succeed()
        rebooted = _restart(tmp_path, ttl=0.05)
        assert rebooted.get(job.job_id) is not None  # fresh window
        time.sleep(0.08)
        assert rebooted.get(job.job_id) is None  # then TTL applies


class TestRetentionRaces:
    def test_ttl_purge_races_status_lookups(self, tmp_path):
        """Hammer get()/counts() from threads while jobs expire and new
        ones are created — no exception, no corrupted table."""
        table = JobTable(state_dir=tmp_path, ttl=0.01)
        ids = []
        for _ in range(20):
            job = table.create()
            job.transition(QUEUED)
            job.succeed()
            ids.append(job.job_id)
        errors = []

        def poll():
            try:
                for _ in range(200):
                    for job_id in ids:
                        job = table.get(job_id)
                        if job is not None:
                            job.as_dict()
                    table.counts()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def churn():
            try:
                for _ in range(50):
                    job = table.create()
                    job.transition(QUEUED)
                    job.succeed()
                    time.sleep(0.001)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=poll) for _ in range(4)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        time.sleep(0.02)
        table.purge()
        for job_id in ids:
            assert table.get(job_id) is None

    def test_cancel_races_ttl_expiry(self, tmp_path):
        """A cancel landing after the TTL purged the job is a clean miss
        (the HTTP layer 404s), never a crash or a zombie entry."""
        table = JobTable(ttl=0.01)
        job = table.create()
        job.transition(QUEUED)
        job.succeed()
        time.sleep(0.03)
        assert table.get(job.job_id) is None  # purged on access
        # Cancelling the stale handle is a terminal no-op.
        assert job.request_cancel() is False
        assert job.state == SUCCEEDED
        assert len(table) == 0

    def test_purged_client_key_is_released(self, tmp_path):
        table = JobTable(ttl=0.01)
        job = table.create(client_id="ck-reuse")
        job.transition(QUEUED)
        job.succeed()
        time.sleep(0.03)
        assert table.find_client("ck-reuse") is None
        # The key is reusable after the purge: a fresh job claims it.
        fresh = table.create(client_id="ck-reuse")
        assert table.find_client("ck-reuse").job_id == fresh.job_id


class TestStatelessTableUnchanged:
    def test_no_state_dir_means_no_journal(self, tmp_path):
        table = JobTable()
        job = table.create()
        job.transition(QUEUED)
        job.succeed()
        assert table.state_store is None
        assert list(tmp_path.iterdir()) == []
