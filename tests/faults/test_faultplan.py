"""Unit tests for the deterministic fault-injection plan machinery."""

import pytest

from repro import faults
from repro.api.config import ConfigError, FaultConfig, PipelineConfig
from repro.faults import (
    FAULT_SITES,
    FaultError,
    FaultInjected,
    FaultPlan,
    FaultPoint,
    NULL_FAULTS,
    SimulatedCrash,
    injected,
    parse_fault_spec,
    validate_point,
)


@pytest.fixture(autouse=True)
def clean_active_plan():
    faults.reset()
    yield
    faults.reset()


class TestFaultPoint:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPoint(site="nonsense.seam")

    def test_wildcard_must_match_a_component(self):
        with pytest.raises(ValueError, match="matches no known site"):
            FaultPoint(site="carrier.*")

    def test_wildcard_matches_prefix(self):
        point = FaultPoint(site="store.*")
        assert point.matches("store.flush_tmp")
        assert point.matches("store.journal_append")
        assert not point.matches("registry.disk_read")

    def test_exact_site_matches_only_itself(self):
        point = FaultPoint(site="shm.attach")
        assert point.matches("shm.attach")
        assert not point.matches("shm.write")

    def test_validation_bounds(self):
        with pytest.raises(ValueError, match="nth"):
            validate_point({"site": "shm.attach", "nth": 0})
        with pytest.raises(ValueError, match="probability"):
            validate_point({"site": "shm.attach", "probability": 1.5})
        with pytest.raises(ValueError, match="mode"):
            validate_point({"site": "shm.attach", "mode": "explode"})
        with pytest.raises(ValueError, match="unknown fault point fields"):
            validate_point({"site": "shm.attach", "color": "red"})


class TestFaultPlan:
    def test_null_plan_is_default_and_inert(self):
        assert faults.active_plan() is NULL_FAULTS
        for site in FAULT_SITES:
            faults.fire(site)  # never raises
        assert NULL_FAULTS.injected_total() == 0

    def test_nth_rule_fires_exactly_once(self):
        plan = FaultPlan([FaultPoint(site="shm.attach", nth=2, times=1)])
        plan.fire("shm.attach")
        with pytest.raises(FaultInjected):
            plan.fire("shm.attach")
        for _ in range(5):
            plan.fire("shm.attach")  # nth passed; never again
        assert plan.injected_total() == 1
        assert plan.counts()["shm.attach"] == 7

    def test_times_bounds_unconditional_rule(self):
        plan = FaultPlan([FaultPoint(site="shm.write", times=2)])
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.fire("shm.write")
        plan.fire("shm.write")
        assert plan.injected_total() == 2

    def test_crash_mode_raises_simulated_crash(self):
        plan = FaultPlan([FaultPoint(site="store.flush_tmp", crash=True)])
        with pytest.raises(SimulatedCrash) as excinfo:
            plan.fire("store.flush_tmp")
        assert excinfo.value.code == "simulated_crash"
        assert isinstance(excinfo.value, FaultError)

    def test_latency_mode_does_not_raise(self):
        plan = FaultPlan(
            [FaultPoint(site="engine.execute", mode="latency", delay=0.0)]
        )
        plan.fire("engine.execute")
        assert plan.injected_total() == 1

    def test_probability_is_seed_deterministic(self):
        def firings(seed):
            plan = FaultPlan(
                [FaultPoint(site="http.accept", probability=0.5)], seed=seed
            )
            fired = []
            for index in range(50):
                try:
                    plan.fire("http.accept")
                except FaultInjected:
                    fired.append(index)
            return fired

        assert firings(7) == firings(7)
        assert firings(7) != firings(8)

    def test_prime_offsets_nth_counting(self):
        # A respawned worker primed with the parent's dispatch tally must
        # NOT re-fire an nth rule it already consumed in a previous life.
        plan = FaultPlan([FaultPoint(site="worker.execute", nth=2, times=1)])
        plan.prime({"worker.execute": 2})
        for _ in range(4):
            plan.fire("worker.execute")
        assert plan.injected_total() == 0

    def test_spec_roundtrip_rebuilds_equivalent_plan(self):
        original = FaultPlan(
            [FaultPoint(site="registry.disk_read", nth=3, times=1)], seed=11
        )
        clone = FaultPlan.from_spec(original.as_spec())
        assert clone.seed == 11
        clone.fire("registry.disk_read")
        clone.fire("registry.disk_read")
        with pytest.raises(FaultInjected):
            clone.fire("registry.disk_read")

    def test_injected_context_installs_and_restores(self):
        plan = FaultPlan([FaultPoint(site="shm.attach")])
        with injected(plan) as active:
            assert faults.active_plan() is active is plan
            with pytest.raises(FaultInjected):
                faults.fire("shm.attach")
        assert faults.active_plan() is NULL_FAULTS
        faults.fire("shm.attach")  # restored: inert again

    def test_custom_message_carried(self):
        plan = FaultPlan(
            [FaultPoint(site="shm.attach", message="disk on fire")]
        )
        with pytest.raises(FaultInjected, match="disk on fire"):
            plan.fire("shm.attach")


class TestSpecParsing:
    def test_compact_spec(self):
        spec = parse_fault_spec(
            "seed=7|worker.execute:kill:nth=2|registry.disk_read:error:nth=1"
        )
        assert spec["seed"] == 7
        assert [p["site"] for p in spec["points"]] == [
            "worker.execute", "registry.disk_read",
        ]
        assert spec["points"][0]["mode"] == "kill"
        assert spec["points"][0]["nth"] == 2

    def test_compact_extras(self):
        spec = parse_fault_spec(
            "store.flush_tmp:error:times=3:probability=0.25:crash=true"
            ":message=boom"
        )
        (point,) = spec["points"]
        assert point["times"] == 3
        assert point["probability"] == 0.25
        assert point["crash"] is True
        assert point["message"] == "boom"

    def test_json_spec(self):
        spec = parse_fault_spec(
            '{"seed": 3, "points": [{"site": "shm.attach", "nth": 1}]}'
        )
        assert spec["seed"] == 3
        assert spec["points"][0]["site"] == "shm.attach"

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("")
        with pytest.raises(ValueError):
            parse_fault_spec("not.a.site:error")
        with pytest.raises(ValueError):
            parse_fault_spec("shm.attach:error:frequency=2")


class TestFaultConfig:
    def test_disabled_by_default(self):
        cfg = PipelineConfig()
        assert cfg.faults.enabled is False
        assert cfg.faults.points == ()

    def test_points_normalized_and_validated(self):
        cfg = FaultConfig.from_dict(
            {"enabled": True, "seed": 5,
             "points": [{"site": "worker.execute", "mode": "kill"}]}
        )
        assert cfg.points[0]["probability"] == 1.0
        plan = FaultPlan.from_config(cfg)
        assert plan.seed == 5
        assert plan.points[0].site == "worker.execute"

    def test_bad_site_fails_config_validation(self):
        with pytest.raises(ConfigError):
            FaultConfig.from_dict(
                {"enabled": True, "points": [{"site": "bogus.site"}]}
            )

    def test_roundtrips_through_pipeline_json(self, tmp_path):
        cfg = PipelineConfig().replace(
            faults=FaultConfig.from_dict(
                {"enabled": True, "seed": 9,
                 "points": [{"site": "store.*", "crash": True}]}
            )
        )
        path = tmp_path / "pipeline.json"
        cfg.save(path)
        loaded = PipelineConfig.load(path)
        assert loaded.faults == cfg.faults
