"""ServeClient retry/backoff behavior under backpressure and drain.

The transport is scripted (a ServeClient subclass replaying canned
responses), so every retry decision is exercised deterministically: which
codes/statuses retry, how backoff grows and caps, how Retry-After is
honored, and that the auto-generated client job id makes retried
submissions idempotent."""

import random

import pytest

from repro.serve import ServeClient, ServeClientError
from repro.serve.client import RETRYABLE_CODES, RETRYABLE_STATUSES


class ScriptedClient(ServeClient):
    """Replays a canned (status, payload) sequence instead of sockets."""

    def __init__(self, script, **kwargs):
        kwargs.setdefault("rng", random.Random(0))
        super().__init__("http://127.0.0.1:1", **kwargs)
        self.script = list(script)
        self.bodies = []
        self.sleeps = []

    def _request(self, method, path, body=None):
        self.bodies.append(body)
        if not self.script:
            raise AssertionError("script exhausted")
        entry = self.script.pop(0)
        if isinstance(entry, Exception):
            raise entry
        status, payload, retry_after = entry
        self.last_retry_after = retry_after
        return status, payload

    def _backoff_delay(self, attempt, retry_after):
        delay = super()._backoff_delay(attempt, retry_after)
        self.sleeps.append(delay)
        return 0.0  # scripted: never actually sleep


def _busy(retry_after=None):
    return (
        429,
        {"error": "queue is full", "error_code": "queue_full"},
        retry_after,
    )


def _draining():
    return (
        503,
        {"error": "shutting down", "error_code": "shutdown"},
        1,
    )


def _accepted(job_id="job-000001-aa"):
    return (202, {"job_id": job_id}, None)


class TestRetryPolicy:
    def test_rides_out_backpressure_then_succeeds(self):
        client = ScriptedClient([_busy(), _busy(), _accepted()], retries=5)
        assert client.submit(kind="pipeline") == "job-000001-aa"
        assert client.retries_performed == 2

    def test_exhausted_budget_raises_the_last_error(self):
        client = ScriptedClient([_busy(), _busy(), _busy()], retries=2)
        with pytest.raises(ServeClientError) as excinfo:
            client.submit()
        assert excinfo.value.code == "queue_full"
        assert client.retries_performed == 2

    def test_zero_budget_fails_fast(self):
        client = ScriptedClient([_busy()])
        with pytest.raises(ServeClientError):
            client.submit()
        assert client.retries_performed == 0

    def test_drain_503_is_retryable(self):
        client = ScriptedClient([_draining(), _accepted()], retries=1)
        assert client.submit() == "job-000001-aa"

    def test_transport_errors_are_retryable(self):
        client = ScriptedClient(
            [ServeClientError("connection refused", code="transport"),
             _accepted()],
            retries=1,
        )
        assert client.submit() == "job-000001-aa"

    def test_non_retryable_codes_raise_immediately(self):
        client = ScriptedClient(
            [(400, {"error": "bad", "error_code": "invalid_request"}, None)],
            retries=5,
        )
        with pytest.raises(ServeClientError) as excinfo:
            client.submit()
        assert excinfo.value.status == 400
        assert client.retries_performed == 0

    def test_per_call_budget_overrides_constructor(self):
        client = ScriptedClient([_busy()], retries=5)
        with pytest.raises(ServeClientError):
            client.submit(retries=0)

    def test_retryable_sets_are_sane(self):
        assert "queue_full" in RETRYABLE_CODES
        assert "shutdown" in RETRYABLE_CODES
        assert "transport" in RETRYABLE_CODES
        assert RETRYABLE_STATUSES == frozenset({429, 503})


class TestBackoff:
    def test_exponential_growth_with_jitter_in_bounds(self):
        client = ServeClient(
            "http://127.0.0.1:1",
            backoff_base=0.1,
            backoff_cap=5.0,
            rng=random.Random(42),
        )
        for attempt in range(4):
            ceiling = min(5.0, 0.1 * (2 ** attempt))
            delay = client._backoff_delay(attempt, None)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_retry_after_overrides_the_exponent(self):
        client = ServeClient(
            "http://127.0.0.1:1", backoff_cap=60.0, rng=random.Random(1)
        )
        delay = client._backoff_delay(0, 10)
        assert 5.0 <= delay <= 10.0  # honors the hint (with jitter)

    def test_cap_bounds_even_retry_after(self):
        client = ServeClient(
            "http://127.0.0.1:1", backoff_cap=2.0, rng=random.Random(1)
        )
        assert client._backoff_delay(0, 3600) <= 2.0

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", retries=-1)


class TestIdempotentResubmission:
    def test_client_job_id_autogenerated_with_a_budget(self):
        client = ScriptedClient([_busy(), _accepted()], retries=1)
        client.submit()
        keys = {body.get("client_job_id") for body in client.bodies}
        assert len(keys) == 1  # every attempt carried the SAME key
        (key,) = keys
        assert key and key.startswith("ck-")

    def test_explicit_client_job_id_passes_through(self):
        client = ScriptedClient([_accepted()], retries=3)
        client.submit(client_job_id="ck-mine")
        assert client.bodies[0]["client_job_id"] == "ck-mine"

    def test_no_budget_no_key(self):
        client = ScriptedClient([_accepted()])
        client.submit()
        assert "client_job_id" not in client.bodies[0]
